"""Table 7: vNMSE of TopK vs TopKC at equal bits per coordinate.

At equal ``b`` TopKC aggregates more coordinates than TopK (it spends no bits
on indices), which -- together with the spatial locality of large gradient
coordinates -- gives it a lower compression error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import ExperimentSession
from repro.core.reporting import format_float_table
from repro.experiments.table4 import BIT_BUDGETS


@dataclass(frozen=True)
class SparsifierErrorRow:
    """vNMSE of TopK and TopKC at one bit budget."""

    bits_per_coordinate: float
    topk_vnmse: float
    topkc_vnmse: float

    @property
    def topkc_is_better(self) -> bool:
        """Whether TopKC's aggregate is closer to the true mean."""
        return self.topkc_vnmse <= self.topk_vnmse


def run_table7(
    *,
    num_coordinates: int = 1 << 17,
    num_rounds: int = 3,
    num_workers: int = 4,
    seed: int = 3,
) -> list[SparsifierErrorRow]:
    """Measure vNMSE of TopK vs TopKC on BERT-like gradients."""
    session = ExperimentSession(seed=seed)
    specs = [
        f"{family}(b={bits:g})" for family in ("topk", "topkc") for bits in BIT_BUDGETS
    ]
    grid = session.sweep(
        specs,
        metric="vnmse",
        num_coordinates=num_coordinates,
        num_rounds=num_rounds,
        num_workers=num_workers,
        gradient_seed=seed,
    )
    return [
        SparsifierErrorRow(
            bits_per_coordinate=bits,
            topk_vnmse=grid.value(f"topk(b={bits:g})"),
            topkc_vnmse=grid.value(f"topkc(b={bits:g})"),
        )
        for bits in BIT_BUDGETS
    ]


def render_table7(rows: list[SparsifierErrorRow] | None = None) -> str:
    """Table 7 formatted for the terminal."""
    rows = rows or run_table7()
    header = ["Compression"] + [f"b = {row.bits_per_coordinate:g}" for row in rows]
    body = [
        ["TopK"] + [row.topk_vnmse for row in rows],
        ["TopKC"] + [row.topkc_vnmse for row in rows],
    ]
    return format_float_table(
        header,
        body,
        title="Table 7: vNMSE of aggregated gradients, TopK vs TopKC (BERT-like gradients)",
        precision=3,
    )


if __name__ == "__main__":
    print(render_table7())
