"""Experiment drivers: one module per table and figure of the paper.

Every module exposes a ``run_*`` function that returns structured results and
a ``render_*`` function that prints the same rows/series the paper reports.
The benchmark harness under ``benchmarks/`` calls these drivers; the
EXPERIMENTS.md document records the measured values next to the paper's.

| Module      | Paper content                                              |
|-------------|------------------------------------------------------------|
| ``table1``  | Assessment of prior gradient compression systems           |
| ``table2``  | Baseline throughput vs training/communication precision    |
| ``table4``  | vNMSE of TopKC vs TopKC with random permutation            |
| ``table5``  | Throughput of TopK vs TopKC                                 |
| ``table6``  | Compression overhead of TopK                                |
| ``table7``  | vNMSE of TopK vs TopKC                                      |
| ``table8``  | Throughput of THC variants (saturation, partial rotation)   |
| ``table9``  | Bits-per-coordinate and throughput of PowerSGD              |
| ``figure1`` | TTA of TopKC vs TopK vs the FP16/FP32 baselines            |
| ``figure2`` | TTA of THC variants                                         |
| ``figure3`` | TTA of PowerSGD across ranks                                |
| ``fleet``   | Scheme pricing on 100k-1M-worker generated fabrics          |
| ``validation`` | Measured-vs-simulated agreement via the real-tensor bridge |
"""

from repro.experiments import (  # noqa: F401
    adaptive,
    common,
    faults,
    figure1,
    figure2,
    figure3,
    fleet,
    scenario_fleet,
    table1,
    table2,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    validation,
)

__all__ = [
    "adaptive",
    "common",
    "faults",
    "fleet",
    "scenario_fleet",
    "validation",
    "table1",
    "table2",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "figure1",
    "figure2",
    "figure3",
]
