"""Table 1: assessment of prior gradient compression systems."""

from __future__ import annotations

from repro.core.assessment import PRIOR_SYSTEMS, assessment_table
from repro.core.reporting import format_table


def run_table1() -> list[list[str]]:
    """Return Table 1 as rows of strings (criteria x systems)."""
    return assessment_table()


def summary_statistics() -> dict[str, float]:
    """Aggregate statistics the paper's prose draws from Table 1."""
    fp16_count = sum(1 for s in PRIOR_SYSTEMS if s.fp16_baseline.value == "yes")
    end_to_end_fractions = [s.end_to_end_fraction() for s in PRIOR_SYSTEMS]
    return {
        "num_systems": float(len(PRIOR_SYSTEMS)),
        "fraction_with_fp16_baseline": fp16_count / len(PRIOR_SYSTEMS),
        "mean_end_to_end_fraction": sum(end_to_end_fractions) / len(end_to_end_fractions),
    }


def render_table1() -> str:
    """Table 1 formatted for the terminal."""
    return format_table(
        run_table1(), title="Table 1: Assessment of prior gradient compression systems"
    )


if __name__ == "__main__":
    print(render_table1())
