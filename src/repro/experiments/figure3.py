"""Figure 3: TTA of PowerSGD across ranks.

Rank 1 has the highest throughput but converges slower and to a lower
accuracy; rank 4 beats FP32 comfortably yet offers only a modest gain over
FP16 -- both of the paper's evaluation lessons in one sweep.
"""

from __future__ import annotations

from repro.api import DEFAULT_BASELINE_SPEC, ExperimentSession
from repro.core.evaluation import EndToEndResult
from repro.core.reporting import format_float_table, render_curves
from repro.core.utility import UtilityReport
from repro.simulator.cluster import ClusterSpec
from repro.training.workloads import WorkloadSpec, vgg19_tinyimagenet

#: The series plotted in Figure 3.
FIGURE3_SCHEMES: tuple[str, ...] = (
    "powersgd(r=1)",
    "powersgd(r=4)",
    "powersgd(r=16)",
    "powersgd(r=64)",
)

BASELINE_SCHEMES: tuple[str, ...] = (DEFAULT_BASELINE_SPEC, "baseline(p=fp32)")


def run_figure3(
    workload: WorkloadSpec | None = None,
    *,
    num_rounds: int = 500,
    eval_every: int = 10,
    seed: int = 0,
    cluster: ClusterSpec | None = None,
    schemes: tuple[str, ...] = FIGURE3_SCHEMES,
) -> tuple[dict[str, EndToEndResult], dict[str, UtilityReport]]:
    """Train every Figure 3 series and compute utility against FP16."""
    workload = workload or vgg19_tinyimagenet()
    session = ExperimentSession(cluster=cluster, seed=seed)
    return session.compare(
        list(BASELINE_SCHEMES[1:]) + list(schemes),
        workload,
        baseline=BASELINE_SCHEMES[0],
        num_rounds=num_rounds,
        eval_every=eval_every,
    )


def render_figure3(
    results: tuple[dict[str, EndToEndResult], dict[str, UtilityReport]] | None = None,
    **kwargs,
) -> str:
    """Figure 3 rendered as ASCII TTA curves plus a summary table."""
    if results is None:
        results = run_figure3(**kwargs)
    per_scheme, utilities = results
    plot = render_curves(
        [result.curve for result in per_scheme.values()],
        title="Figure 3: TTA of PowerSGD by rank (simulated time)",
    )
    table = format_float_table(
        ["Scheme", "Rounds/s", "b", "Best metric"],
        [
            [name, result.rounds_per_second, result.bits_per_coordinate, result.curve.best_value()]
            for name, result in per_scheme.items()
        ],
        precision=4,
    )
    utility_table = format_float_table(
        ["Scheme", "Geomean speedup vs FP16", "Targets missed"],
        [
            [name, report.mean_speedup() or float("nan"), len(report.unreachable_targets)]
            for name, report in utilities.items()
        ],
        precision=3,
    )
    return "\n\n".join([plot, table, utility_table])


if __name__ == "__main__":
    print(render_figure3(num_rounds=300))
