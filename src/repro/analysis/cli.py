"""The reprolint command line: ``python -m repro.analysis`` (alias ``reprolint``).

Exit-code contract (CI relies on it):

* ``0`` -- the pass ran and found nothing;
* ``1`` -- the pass ran and produced findings (including parse errors);
* ``2`` -- the tool itself could not run: unknown rule code, malformed
  configuration, or a missing input path.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.config import ConfigError, load_config
from repro.analysis.engine import run_analysis
from repro.analysis.registry import UnknownRuleError
from repro.analysis.reporting import render_json, render_rule_list, render_text

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Domain-invariant static analysis for this repository: seeded "
            "determinism, float32 hot-path discipline, cache-key purity, "
            "executor pickling safety, async hygiene, and the scheme-registry "
            "contract."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is the CI artifact; default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the report to FILE (stdout is always printed)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        metavar="DIR",
        help="analysis root for path scopes and config discovery (default: cwd)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        metavar="TOML",
        help="explicit config file (default: <root>/pyproject.toml [tool.reprolint])",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="CODE",
        help="run only this rule (repeatable, e.g. --rule RPL001)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered rule with its scope and invariant, then exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="text format: append a per-rule finding breakdown",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return EXIT_CLEAN

    root = (args.root or Path.cwd()).resolve()
    try:
        config = load_config(root, args.config)
        report = run_analysis(
            args.paths, root=root, config=config, only_rules=args.rule
        )
    except (UnknownRuleError, ConfigError, FileNotFoundError) as error:
        print(f"reprolint: error: {error}", file=sys.stderr)
        return EXIT_ERROR

    rendered = (
        render_json(report)
        if args.format == "json"
        else render_text(report, verbose=args.verbose)
    )
    print(rendered)
    if args.output is not None:
        args.output.write_text(rendered + "\n", encoding="utf-8")
    return EXIT_CLEAN if report.ok else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
