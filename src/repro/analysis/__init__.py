"""``repro.analysis`` -- reprolint, the repo's domain-invariant linter.

An AST-based static-analysis pass over invariants no generic linter can
see, each protecting a property the test and benchmark suites rely on:

* **RPL001 determinism** -- no wall-clock or global-RNG reads in pricing
  paths; randomness flows through seeded ``np.random.default_rng(seed)``.
* **RPL002 dtype discipline** -- designated hot-path modules and every
  ``aggregate_matrix`` stay float32: no ``np.float64``, no dtype-less
  array constructors, no ``.astype(float64)`` round-trips.
* **RPL003 cache-key purity** -- ``cache_key``/``canonical*`` functions
  never read display names, ``id()``, ``hash()``, or unsorted dict/set
  iteration: identities must be restart-stable.
* **RPL004 executor safety** -- nothing unpicklable (lambdas, closures,
  bound methods) crosses the ``repro.api.executors`` process boundary, and
  worker functions never write module-level mutable state.
* **RPL005 async hygiene** -- no blocking calls (``time.sleep``,
  synchronous sqlite, ``subprocess``) inside ``async def`` in the service
  layer without executor offload.
* **RPL006 registry contract** -- every ``@register``-ed scheme defines
  ``aggregate_matrix`` and ``estimate_bucket_costs`` or explicitly
  inherits them.

Run it with ``python -m repro.analysis [paths...]``; configuration lives in
``pyproject.toml`` under ``[tool.reprolint]``; suppress a deliberate
violation inline with ``# reprolint: disable=RPL001 - justification``.
"""

from repro.analysis.config import ConfigError, LintConfig, load_config
from repro.analysis.engine import (
    AnalysisReport,
    FileContext,
    PARSE_ERROR_CODE,
    run_analysis,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    Rule,
    UnknownRuleError,
    all_rules,
    available_rules,
    get_rule,
)
from repro.analysis.reporting import SCHEMA_VERSION, render_json, render_text

__all__ = [
    "AnalysisReport",
    "ConfigError",
    "FileContext",
    "Finding",
    "LintConfig",
    "PARSE_ERROR_CODE",
    "Rule",
    "SCHEMA_VERSION",
    "UnknownRuleError",
    "all_rules",
    "available_rules",
    "get_rule",
    "load_config",
    "render_json",
    "render_text",
    "run_analysis",
]
