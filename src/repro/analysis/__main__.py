"""``python -m repro.analysis`` -- run the reprolint pass."""

import sys

from repro.analysis.cli import main

sys.exit(main())
