"""``[tool.reprolint]`` configuration loading.

Configuration lives in ``pyproject.toml`` next to the analysis root::

    [tool.reprolint]
    disable = ["RPL004"]                      # rule codes off by default
    exclude = ["tests/analysis/fixtures/*"]   # fnmatch globs, never scanned

    [tool.reprolint.rpl001]
    paths = ["src/repro/simulator"]           # override the rule's scope

Unknown rule codes anywhere in the configuration raise
:class:`~repro.analysis.registry.UnknownRuleError` with close-match
suggestions -- the same fail-loud UX as ``UnknownSchemeError``.

Parsing uses :mod:`tomllib` (Python >= 3.11) or ``tomli`` when available;
otherwise a minimal built-in parser covers the subset the reprolint tables
need (tables, strings, string lists, booleans, integers), so the tool works
on a bare Python 3.10 without new dependencies.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import registry


class ConfigError(ValueError):
    """Malformed reprolint configuration (bad types, unreadable file)."""


# --------------------------------------------------------------------------- #
# TOML loading with a dependency-free fallback
# --------------------------------------------------------------------------- #
def _load_toml(path: Path) -> dict:
    text = path.read_text(encoding="utf-8")
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python 3.10 without tomllib
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            return _parse_toml_subset(text)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as error:
        raise ConfigError(f"{path}: invalid TOML: {error}") from error


_TABLE_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_KEY_RE = re.compile(r"^(?P<key>[A-Za-z0-9_.-]+)\s*=\s*(?P<value>.+)$")


def _parse_scalar(text: str):
    text = text.strip()
    if text.startswith(("'", '"')):
        return text[1:-1]
    if text in ("true", "false"):
        return text == "true"
    try:
        return int(text)
    except ValueError:
        raise ConfigError(f"unsupported TOML value in fallback parser: {text!r}") from None


def _parse_toml_subset(text: str) -> dict:  # pragma: no cover - 3.10 fallback
    """Parse the small TOML subset reprolint tables use (no dependencies)."""
    root: dict = {}
    table = root
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip() if '"' not in raw and "'" not in raw else raw.rstrip()
        if pending:
            line = pending + " " + line.strip()
            pending = ""
        if not line.strip():
            continue
        match = _TABLE_RE.match(line.strip())
        if match:
            table = root
            for part in match.group("name").strip().split("."):
                table = table.setdefault(part.strip().strip('"').strip("'"), {})
            continue
        match = _KEY_RE.match(line.strip())
        if not match:
            continue
        value = match.group("value").strip()
        if value.startswith("[") and not value.endswith("]"):
            pending = line.strip()
            continue
        if value.startswith("["):
            inner = value[1:-1].strip()
            items = [p for p in re.split(r",\s*", inner) if p.strip()]
            table[match.group("key")] = [_parse_scalar(item) for item in items]
        else:
            table[match.group("key")] = _parse_scalar(value)
    return root


# --------------------------------------------------------------------------- #
# The configuration model
# --------------------------------------------------------------------------- #
@dataclass
class LintConfig:
    """Validated reprolint configuration.

    Attributes:
        enable: Explicit rule whitelist (``None`` means every registered rule).
        disable: Rule codes switched off.
        exclude: fnmatch globs (on root-relative POSIX paths) never scanned.
        rule_options: Per-rule option tables (``paths`` plus rule-specific
            keys), merged over each rule's registered defaults.
        source: Path of the file the configuration came from, if any.
    """

    enable: tuple[str, ...] | None = None
    disable: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    rule_options: dict[str, dict] = field(default_factory=dict)
    source: Path | None = None

    def enabled_rules(self) -> list[registry.Rule]:
        """The rules this configuration turns on, sorted by code."""
        codes = (
            registry.resolve_rule_codes(self.enable)
            if self.enable is not None
            else registry.available_rules()
        )
        disabled = set(registry.resolve_rule_codes(self.disable))
        return [registry.get_rule(code) for code in codes if code not in disabled]

    def options_for(self, code: str) -> dict:
        """The rule's registered defaults merged with configured overrides."""
        merged = dict(registry.get_rule(code).default_options)
        merged.update(self.rule_options.get(code.upper(), {}))
        return merged

    def paths_for(self, code: str) -> tuple[str, ...]:
        """The path scope of a rule: configured ``paths`` or its default."""
        configured = self.rule_options.get(code.upper(), {}).get("paths")
        if configured is not None:
            return tuple(configured)
        return registry.get_rule(code).default_paths


def _string_list(table: dict, key: str, where: str) -> tuple[str, ...] | None:
    value = table.get(key)
    if value is None:
        return None
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise ConfigError(f"{where}.{key} must be a list of strings, got {value!r}")
    return tuple(value)


def config_from_mapping(mapping: dict, *, source: Path | None = None) -> LintConfig:
    """Build a :class:`LintConfig` from a parsed ``[tool.reprolint]`` table.

    Raises:
        UnknownRuleError: A rule code in ``enable``/``disable``/per-rule
            tables matches no registered rule (suggestions included).
        ConfigError: A value has the wrong type.
    """
    where = "[tool.reprolint]"
    enable = _string_list(mapping, "enable", where)
    disable = _string_list(mapping, "disable", where) or ()
    exclude = _string_list(mapping, "exclude", where) or ()
    if enable is not None:
        enable = tuple(registry.resolve_rule_codes(enable))
    disable = tuple(registry.resolve_rule_codes(disable))

    rule_options: dict[str, dict] = {}
    for key, value in mapping.items():
        if key in ("enable", "disable", "exclude"):
            continue
        if not isinstance(value, dict):
            raise ConfigError(f"{where}.{key} must be a table, got {value!r}")
        code = registry.get_rule(key).code  # raises UnknownRuleError with hints
        options = dict(value)
        paths = _string_list(value, "paths", f"{where}.{key}")
        if paths is not None:
            options["paths"] = paths
        rule_options[code] = options

    return LintConfig(
        enable=enable,
        disable=disable,
        exclude=exclude,
        rule_options=rule_options,
        source=source,
    )


def load_config(root: Path, explicit: Path | None = None) -> LintConfig:
    """Load configuration for an analysis root.

    ``explicit`` (the CLI's ``--config``) must exist; otherwise
    ``<root>/pyproject.toml`` is used when present, and an empty
    configuration (all rules, default scopes) when not.
    """
    if explicit is not None:
        if not explicit.is_file():
            raise ConfigError(f"config file not found: {explicit}")
        path = explicit
    else:
        path = root / "pyproject.toml"
        if not path.is_file():
            return LintConfig()
    data = _load_toml(path)
    table = data.get("tool", {}).get("reprolint", {})
    if not isinstance(table, dict):
        raise ConfigError(f"{path}: [tool.reprolint] must be a table")
    return config_from_mapping(table, source=path)
