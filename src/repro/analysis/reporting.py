"""Reprolint reporters: ``file:line:col`` text and a stable JSON schema.

The JSON document (``--format json``) is the CI artifact; its shape is
pinned by ``schema_version`` and tested in ``tests/analysis/test_cli.py``::

    {
      "tool": "reprolint",
      "schema_version": 1,
      "duration_seconds": 0.41,
      "files_scanned": 131,
      "rules": ["RPL001", ...],
      "summary": {"total": 0, "suppressed": 3, "by_rule": {}},
      "findings": [{"path", "line", "col", "rule", "message"}, ...]
    }
"""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisReport
from repro.analysis.registry import all_rules

#: Bump when the JSON document shape changes incompatibly.
SCHEMA_VERSION = 1


def render_text(report: AnalysisReport, *, verbose: bool = False) -> str:
    """The human reporter: one ``path:line:col: CODE message`` per finding.

    Always ends with a summary line carrying the wall-clock duration of the
    pass, so every run doubles as the pre-commit-budget benchmark.
    """
    lines = [
        f"{finding.location()}: {finding.rule} {finding.message}"
        for finding in report.findings
    ]
    if verbose and report.by_rule():
        lines.append("")
        for code, count in report.by_rule().items():
            lines.append(f"  {code}: {count}")
    status = "clean" if report.ok else f"{len(report.findings)} finding(s)"
    suppressed = f", {report.suppressed} suppressed inline" if report.suppressed else ""
    lines.append(
        f"reprolint: {status} across {report.files_scanned} file(s){suppressed} "
        f"in {report.duration_seconds:.2f}s"
    )
    return "\n".join(lines)


def render_json(report: AnalysisReport, *, indent: int | None = 2) -> str:
    """The machine reporter (CI artifact)."""
    document = {
        "tool": "reprolint",
        "schema_version": SCHEMA_VERSION,
        "duration_seconds": report.duration_seconds,
        "files_scanned": report.files_scanned,
        "rules": list(report.rules),
        "summary": {
            "total": len(report.findings),
            "suppressed": report.suppressed,
            "by_rule": report.by_rule(),
        },
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(document, indent=indent, sort_keys=False)


def render_rule_list() -> str:
    """``--list-rules`` output: every rule, its scope, and its invariant."""
    lines = []
    for rule in all_rules():
        scope = ", ".join(rule.default_paths) or "(everywhere)"
        lines.append(f"{rule.code} [{rule.name}]  scope: {scope}")
        lines.append(f"    {rule.invariant}")
    return "\n".join(lines)
