"""Inline suppression comments: ``# reprolint: disable=RPL001``.

Two forms, both parsed from real comment tokens (string literals that merely
*look* like suppression comments never suppress anything):

* line suppressions -- ``# reprolint: disable=RPL001`` (or
  ``disable=RPL001,RPL003`` / ``disable=all``) at the end of the offending
  line suppresses those rules on that line only.  Anything after the rule
  list (conventionally a justification, e.g. ``- wall-clock latency
  histogram``) is ignored by the parser but expected by reviewers.
* file suppressions -- ``# reprolint: disable-file=RPL002`` anywhere in the
  file suppresses the rules for the whole file (used by the documented
  legacy-oracle allowlist).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

#: Sentinel rule set meaning "every rule".
ALL = frozenset({"ALL"})

_COMMENT_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass
class SuppressionMap:
    """Parsed suppressions of one file."""

    #: line number -> rule codes suppressed on that line (or :data:`ALL`).
    lines: dict[int, frozenset[str]] = field(default_factory=dict)
    #: rule codes suppressed for the whole file (or :data:`ALL`).
    file_wide: frozenset[str] = frozenset()

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is suppressed at ``line``."""
        rule = rule.upper()
        if "ALL" in self.file_wide or rule in self.file_wide:
            return True
        at_line = self.lines.get(line)
        if at_line is None:
            return False
        return "ALL" in at_line or rule in at_line

    @property
    def count(self) -> int:
        """Number of suppression comments parsed (line + file-wide)."""
        return len(self.lines) + (1 if self.file_wide else 0)


def _parse_comment(text: str) -> tuple[str, frozenset[str]] | None:
    match = _COMMENT_RE.search(text)
    if match is None:
        return None
    rules = frozenset(part.strip().upper() for part in match.group("rules").split(","))
    return match.group("kind"), rules


def parse_suppressions(source: str) -> SuppressionMap:
    """Extract the suppression map from a file's source text.

    Uses :mod:`tokenize` so only genuine comments count; on a tokenize
    failure (the file will fail AST parsing anyway and be reported as a
    parse error) an empty map is returned.
    """
    result = SuppressionMap()
    file_wide: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            parsed = _parse_comment(token.string)
            if parsed is None:
                continue
            kind, rules = parsed
            if kind == "disable-file":
                file_wide.update(rules)
            else:
                line = token.start[0]
                existing = result.lines.get(line, frozenset())
                result.lines[line] = existing | rules
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return SuppressionMap()
    result.file_wide = frozenset(file_wide)
    return result
