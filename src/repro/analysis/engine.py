"""The reprolint engine: file walking, rule dispatch, suppression filtering.

:func:`run_analysis` is the single entry point the CLI and the tests share:
it expands the given paths to Python files under the analysis root, parses
each file once, runs every enabled rule whose path scope matches, filters
findings through the file's inline suppressions, and returns an
:class:`AnalysisReport` with stable, sorted findings plus the wall-clock
duration of the pass (the CLI prints it; the CI job keeps it under budget).

Files that fail to parse surface as findings under the reserved code
:data:`PARSE_ERROR_CODE` -- a broken file must fail the CI gate, not
silently skip analysis.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule
from repro.analysis.suppressions import SuppressionMap, parse_suppressions

#: Reserved code for files the engine cannot parse.
PARSE_ERROR_CODE = "RPL000"

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".venv", "venv", "node_modules"}


@dataclass
class FileContext:
    """Everything a rule sees about the file under analysis."""

    path: Path
    relpath: str
    source: str
    #: Options of the rule currently running (defaults merged with config).
    options: dict = field(default_factory=dict)
    #: Code of the rule currently running (set by the engine per dispatch).
    rule_code: str = ""

    def finding(self, node: ast.AST | None, message: str) -> Finding:
        """A finding by the current rule, anchored at ``node`` (or line 1)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            path=self.relpath, line=line, col=col, rule=self.rule_code, message=message
        )


@dataclass
class AnalysisReport:
    """The outcome of one reprolint pass."""

    findings: list[Finding]
    files_scanned: int
    duration_seconds: float
    rules: tuple[str, ...]
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        """Whether the pass is clean (drives the exit-code contract)."""
        return not self.findings

    def by_rule(self) -> dict[str, int]:
        """Finding counts per rule code, sorted by code."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def scope_matches(relpath: str, patterns: Sequence[str]) -> bool:
    """Whether a root-relative POSIX path falls inside a rule's scope.

    Each pattern is a file path, a directory prefix, or an fnmatch glob;
    an empty pattern list matches everything.
    """
    if not patterns:
        return True
    for pattern in patterns:
        normalized = pattern.rstrip("/")
        if relpath == normalized or relpath.startswith(normalized + "/"):
            return True
        if fnmatch(relpath, pattern):
            return True
    return False


def _is_excluded(relpath: str, exclude: Sequence[str]) -> bool:
    return any(
        fnmatch(relpath, pattern) or relpath.startswith(pattern.rstrip("/") + "/")
        for pattern in exclude
    )


def iter_python_files(
    paths: Iterable[str | Path], root: Path, exclude: Sequence[str] = ()
) -> Iterator[Path]:
    """Expand CLI path arguments to the Python files to analyze, in order.

    Relative arguments resolve against ``root``.  Missing paths raise
    :class:`FileNotFoundError` (a typo'd CI invocation must fail loudly,
    not silently scan nothing).
    """
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_file():
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not (_SKIP_DIRS & set(candidate.parts))
            )
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            if _is_excluded(_relpath(resolved, root), exclude):
                continue
            seen.add(resolved)
            yield resolved


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def analyze_file(
    path: Path,
    root: Path,
    rules: Sequence[Rule],
    config: LintConfig,
) -> tuple[list[Finding], int]:
    """Run every in-scope rule over one file.

    Returns the unsuppressed findings and the number suppressed inline.
    """
    relpath = _relpath(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [
            Finding(
                path=relpath,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                rule=PARSE_ERROR_CODE,
                message=f"file does not parse: {error.msg}",
            )
        ], 0

    suppressions: SuppressionMap | None = None
    findings: list[Finding] = []
    suppressed = 0
    ctx = FileContext(path=path, relpath=relpath, source=source)
    for rule in rules:
        if not scope_matches(relpath, config.paths_for(rule.code)):
            continue
        ctx.rule_code = rule.code
        ctx.options = config.options_for(rule.code)
        for finding in rule.check(tree, ctx):
            if suppressions is None:  # parsed lazily: most files are clean
                suppressions = parse_suppressions(source)
            if suppressions.is_suppressed(finding.rule, finding.line):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def run_analysis(
    paths: Sequence[str | Path],
    *,
    root: Path,
    config: LintConfig | None = None,
    only_rules: Sequence[str] | None = None,
) -> AnalysisReport:
    """Run the reprolint pass over ``paths`` and return the report.

    Args:
        paths: Files or directories (relative arguments resolve against
            ``root``).
        root: Analysis root; path scopes, excludes, and reported paths are
            all relative to it.
        config: A loaded :class:`LintConfig`; defaults to an empty one
            (every rule, default scopes).
        only_rules: Restrict the pass to these rule codes (the CLI's
            ``--rule``); unknown codes raise ``UnknownRuleError``.
    """
    from repro.analysis.registry import resolve_rule_codes

    started = time.perf_counter()
    config = config or LintConfig()
    rules = config.enabled_rules()
    if only_rules is not None:
        wanted = set(resolve_rule_codes(only_rules))
        rules = [rule for rule in rules if rule.code in wanted]

    findings: list[Finding] = []
    suppressed = 0
    files_scanned = 0
    for path in iter_python_files(paths, root, config.exclude):
        files_scanned += 1
        file_findings, file_suppressed = analyze_file(path, root, rules, config)
        findings.extend(file_findings)
        suppressed += file_suppressed

    findings.sort()
    return AnalysisReport(
        findings=findings,
        files_scanned=files_scanned,
        duration_seconds=time.perf_counter() - started,
        rules=tuple(rule.code for rule in rules),
        suppressed=suppressed,
    )
