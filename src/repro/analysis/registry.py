"""The reprolint rule registry.

Every rule is a small module under :mod:`repro.analysis.rules` that
registers itself with the :func:`rule` decorator, mirroring the scheme
registry in :mod:`repro.compression.spec`: a decorator, a module-level
table, and an unknown-name error with close-match suggestions
(:class:`UnknownRuleError` matches the ``UnknownSchemeError`` UX exactly,
down to the ``did you mean`` phrasing).

A rule class needs:

* a ``check(tree, ctx)`` method yielding :class:`~repro.analysis.findings.Finding`
  objects (``ctx`` is a :class:`~repro.analysis.engine.FileContext`);
* registration metadata: its code (``RPL001``), a short name, the invariant
  it protects, and the default path scope it applies to.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    import ast

    from repro.analysis.engine import FileContext
    from repro.analysis.findings import Finding


class UnknownRuleError(KeyError):
    """An unknown rule code, with close-match suggestions.

    Subclasses :class:`KeyError` so ``except KeyError`` handlers keep
    working -- the same contract as
    :class:`repro.compression.spec.UnknownSchemeError`.
    """

    def __init__(self, name: str, known: Iterable[str]):
        self.name = name
        self.known = sorted(known)
        self.suggestions = difflib.get_close_matches(
            name.upper(), self.known, n=3, cutoff=0.5
        )
        message = f"unknown reprolint rule {name!r}"
        if self.suggestions:
            message += f"; did you mean: {', '.join(self.suggestions)}?"
        message += f" (known: {', '.join(self.known)})"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


@dataclass
class Rule:
    """Registration metadata plus the checker instance for one rule code."""

    code: str
    name: str
    invariant: str
    default_paths: tuple[str, ...]
    checker: object
    default_options: dict = field(default_factory=dict)

    def check(self, tree: "ast.AST", ctx: "FileContext") -> "Iterator[Finding]":
        return self.checker.check(tree, ctx)


_RULES: dict[str, Rule] = {}


def rule(
    code: str,
    *,
    name: str,
    invariant: str,
    default_paths: tuple[str, ...] | list[str] = (),
    default_options: dict | None = None,
):
    """Class decorator registering a rule checker under ``code``.

    Usage::

        @rule("RPL001", name="determinism", invariant="...", default_paths=[...])
        class Determinism:
            def check(self, tree, ctx): ...
    """
    code = code.upper()

    def decorate(cls: type) -> type:
        if code in _RULES:
            raise ValueError(f"reprolint rule {code!r} is already registered")
        _RULES[code] = Rule(
            code=code,
            name=name,
            invariant=invariant,
            default_paths=tuple(default_paths),
            checker=cls(),
            default_options=dict(default_options or {}),
        )
        cls.code = code
        return cls

    return decorate


def _ensure_loaded() -> None:
    # Importing the rules package populates the table; deferred so that
    # `import repro.analysis.registry` alone never costs a full rule load.
    if not _RULES:
        from repro.analysis import rules  # noqa: F401  (import side effect)


def available_rules() -> list[str]:
    """Registered rule codes, sorted."""
    _ensure_loaded()
    return sorted(_RULES)


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by code."""
    _ensure_loaded()
    return [_RULES[code] for code in sorted(_RULES)]


def get_rule(code: str) -> Rule:
    """Look a rule up by code (case-insensitive).

    Raises:
        UnknownRuleError: If no rule with that code exists (with
            suggestions, matching the ``UnknownSchemeError`` UX).
    """
    _ensure_loaded()
    found = _RULES.get(code.upper())
    if found is None:
        raise UnknownRuleError(code, _RULES)
    return found


def resolve_rule_codes(names: Iterable[str]) -> list[str]:
    """Normalize a list of rule codes, erroring on unknown ones."""
    return [get_rule(name).code for name in names]
