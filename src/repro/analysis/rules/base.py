"""Shared AST helpers for reprolint rules.

The central primitive is *qualified-name resolution*: mapping a call like
``npr.rand(...)`` back to ``numpy.random.rand`` through the module's import
aliases, so rules match semantics ("a call into numpy's global RNG") rather
than surface spelling.
"""

from __future__ import annotations

import ast
from typing import Iterator


def import_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted import path they are bound to.

    Covers ``import x``, ``import x.y as z``, ``from x import y``, and
    ``from x import y as z`` at any nesting level.  Relative imports keep
    their module path without the leading dots (good enough for matching
    suffixes like ``executors.run_tasks``).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    # `import numpy.random` binds the root name; the full
                    # dotted path re-emerges through attribute resolution.
                    root = name.name.split(".", 1)[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{module}.{name.name}" if module else name.name
    return aliases


def qualified_name(
    node: ast.AST, aliases: dict[str, str], *, require_import: bool = False
) -> str | None:
    """The dotted name of a Name/Attribute chain, import aliases resolved.

    ``np.random.rand`` (with ``import numpy as np``) resolves to
    ``"numpy.random.rand"``; chains rooted in anything but a plain name
    (calls, subscripts) resolve to ``None``.  With ``require_import`` the
    chain must be rooted in an imported name -- a local variable that merely
    shadows a module name (``time = ...``) resolves to ``None`` instead of a
    false positive.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    if require_import and current.id not in aliases:
        return None
    root = aliases.get(current.id, current.id)
    parts.append(root)
    return ".".join(reversed(parts))


def call_name(
    node: ast.Call, aliases: dict[str, str], *, require_import: bool = False
) -> str | None:
    """The resolved dotted name of a call's target, if resolvable."""
    return qualified_name(node.func, aliases, require_import=require_import)


def walk_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in the tree, nested ones included."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def module_level_targets(tree: ast.Module) -> set[str]:
    """Names assigned at module level (candidates for shared mutable state)."""
    targets: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    targets.add(target.id)
                elif isinstance(target, ast.Tuple):
                    targets.update(
                        element.id
                        for element in target.elts
                        if isinstance(element, ast.Name)
                    )
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets.add(node.target.id)
    return targets


def decorator_base_name(decorator: ast.expr) -> str | None:
    """The trailing identifier of a decorator (``register`` in
    ``@spec.register("thc", ...)``), whether or not it is called."""
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return None
