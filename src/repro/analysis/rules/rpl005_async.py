"""RPL005: async hygiene in the service layer.

The advisor (PR 6) answers warm-cache queries synchronously *on the event
loop* -- its ~0.1 ms fast path and 28k qps depend on nothing ever blocking
that loop.  One ``time.sleep`` or synchronous sqlite call inside an
``async def`` stalls every in-flight request at once; the load-test only
sees it as an inexplicable p99 cliff.  This rule flags direct calls to
known blocking APIs inside ``async def`` bodies (the service offloads real
work via ``loop.run_in_executor``, which passes function *references*, so
correctly offloaded code never trips it):

* ``time.sleep`` (use ``asyncio.sleep``);
* synchronous sqlite (``sqlite3.connect`` and friends);
* ``subprocess.*`` / ``os.system`` / ``os.popen``;
* synchronous network/file fetch helpers (``urllib.request.urlopen``,
  ``requests.*``, ``socket.create_connection``).

Nested ``def`` helpers inside an ``async def`` are exempt: they execute
wherever they are *called* (typically shipped to an executor), not on the
loop.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import rule
from repro.analysis.rules.base import call_name, import_aliases

_BLOCKING = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "sqlite3.connect": "offload to an executor (loop.run_in_executor)",
    "subprocess.run": "use asyncio.create_subprocess_exec",
    "subprocess.call": "use asyncio.create_subprocess_exec",
    "subprocess.check_call": "use asyncio.create_subprocess_exec",
    "subprocess.check_output": "use asyncio.create_subprocess_exec",
    "subprocess.Popen": "use asyncio.create_subprocess_exec",
    "os.system": "use asyncio.create_subprocess_shell",
    "os.popen": "use asyncio.create_subprocess_shell",
    "os.waitpid": "use asyncio subprocess APIs",
    "urllib.request.urlopen": "offload to an executor",
    "socket.create_connection": "use asyncio.open_connection",
}
_BLOCKING_PREFIXES = {
    "requests.": "offload to an executor (requests is fully synchronous)",
}


class _AsyncBodyVisitor(ast.NodeVisitor):
    """Collects blocking calls lexically inside one async function body,
    without descending into nested (sync or async) function definitions."""

    def __init__(self, aliases: dict[str, str]):
        self.aliases = aliases
        self.hits: list[tuple[ast.AST, str]] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # executes off-loop; not this async body

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return  # inner async defs are visited as their own roots

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node, self.aliases, require_import=True)
        if name is not None:
            hint = _BLOCKING.get(name)
            if hint is None:
                for prefix, prefix_hint in _BLOCKING_PREFIXES.items():
                    if name.startswith(prefix):
                        hint = prefix_hint
                        break
            if hint is not None:
                self.hits.append(
                    (
                        node,
                        f"blocking call `{name}(...)` inside `async def` stalls "
                        f"the event loop (every in-flight request); {hint}",
                    )
                )
        self.generic_visit(node)


@rule(
    "RPL005",
    name="async-hygiene",
    invariant=(
        "async def bodies in the service layer never block the event loop: no "
        "time.sleep, synchronous sqlite, or subprocess without executor offload"
    ),
    default_paths=("src/repro/service",),
)
class AsyncHygieneRule:
    def check(self, tree: ast.AST, ctx) -> Iterator[Finding]:
        aliases = import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            visitor = _AsyncBodyVisitor(aliases)
            for statement in node.body:
                visitor.visit(statement)
            for hit, message in visitor.hits:
                yield ctx.finding(hit, message)
