"""Reprolint rule modules.

Importing this package registers every rule with
:mod:`repro.analysis.registry` (the same import-side-effect pattern the
scheme registry uses).  Each rule lives in its own module with its
invariant documented in the module docstring.
"""

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    rpl001_determinism,
    rpl002_dtype,
    rpl003_cache_key,
    rpl004_executor,
    rpl005_async,
    rpl006_registry,
    rpl007_swallowed_faults,
)
