"""RPL002: float32 discipline in the batched hot path.

PR 4's 13.9-22.5x speedups rest on the stacked ``(n, d)`` worker matrix
staying float32 end to end.  One accidental float64 round-trip -- a
dtype-less ``np.zeros``, an ``.astype(np.float64)``, a ``dtype=float`` --
doubles memory traffic and silently halves BLAS throughput, and the perf
harness only catches it after the fact.  This rule checks, inside the
designated hot-path modules and inside every function named in
``hot_functions`` (``aggregate_matrix`` implementations by default):

* any read of ``np.float64`` / ``np.double`` (or the literal strings
  ``"float64"`` / ``"double"`` used as a dtype);
* array constructors (``np.array``/``zeros``/``ones``/``empty``/``full``)
  without an explicit ``dtype=`` -- numpy defaults them to float64.  An
  explicit ``copy=`` keyword exempts the call: copying an existing array is
  dtype-preserving by construction;
* ``.astype`` casts to float64 (including the builtin ``float``).

The documented legacy-oracle reference paths keep their float64 on purpose
and carry ``# reprolint: disable=RPL002`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import rule
from repro.analysis.rules.base import import_aliases, qualified_name

_FLOAT64_NAMES = {"numpy.float64", "numpy.double", "numpy.float_", "numpy.longdouble"}
_FLOAT64_STRINGS = {"float64", "double", "f8", ">f8", "<f8"}
_DEFAULT_FLOAT64_CONSTRUCTORS = {
    "numpy.array",
    "numpy.zeros",
    "numpy.ones",
    "numpy.empty",
    "numpy.full",
}


def _is_float64_expr(node: ast.expr, aliases: dict[str, str]) -> bool:
    """Whether an expression names float64 (np.float64, "float64", float)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in _FLOAT64_STRINGS
    if isinstance(node, ast.Name) and node.id == "float":
        return True
    name = qualified_name(node, aliases)
    return name in _FLOAT64_NAMES


class _HotScope(ast.NodeVisitor):
    """Tracks whether the visitor currently sits inside a hot function."""

    def __init__(self, hot_functions: set[str], whole_module: bool):
        self.hot_functions = hot_functions
        self.whole_module = whole_module
        self._depth = 0
        self.hits: list[tuple[ast.AST, str]] = []
        self.aliases: dict[str, str] = {}

    @property
    def active(self) -> bool:
        return self.whole_module or self._depth > 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node) -> None:
        entering = node.name in self.hot_functions
        if entering:
            self._depth += 1
        self.generic_visit(node)
        if entering:
            self._depth -= 1

    # ------------------------------------------------------------------ #
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.active:
            name = qualified_name(node, self.aliases)
            if name in _FLOAT64_NAMES:
                self.hits.append(
                    (node, f"`{name}` in a float32 hot path; use np.float32")
                )
                return  # do not descend: one finding per chain
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self.active:
            self._check_call(node)
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        # Bare "float64" strings only matter as dtype= values; those are
        # caught at the call site to avoid flagging docstrings.
        pass

    def _check_call(self, node: ast.Call) -> None:
        keywords = {kw.arg for kw in node.keywords if kw.arg is not None}
        name = qualified_name(node.func, self.aliases)
        if name in _DEFAULT_FLOAT64_CONSTRUCTORS:
            if "dtype" not in keywords and "copy" not in keywords:
                short = name.split(".")[-1]
                self.hits.append(
                    (
                        node,
                        f"dtype-less `np.{short}(...)` defaults to float64 in a "
                        "float32 hot path; pass dtype=np.float32 (or copy= for "
                        "a dtype-preserving copy)",
                    )
                )
        # Attribute spellings (np.float64) are reported once by
        # visit_Attribute; the call-site checks cover the spellings an
        # attribute walk cannot see (dtype strings, the builtin `float`).
        for kw in node.keywords:
            if (
                kw.arg == "dtype"
                and not isinstance(kw.value, ast.Attribute)
                and _is_float64_expr(kw.value, self.aliases)
            ):
                self.hits.append(
                    (kw.value, "dtype resolves to float64 in a float32 hot path")
                )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
            and not isinstance(node.args[0], ast.Attribute)
            and _is_float64_expr(node.args[0], self.aliases)
        ):
            self.hits.append(
                (
                    node,
                    ".astype to float64 round-trips the hot path out of "
                    "float32; keep the matrix float32 (legacy-oracle "
                    "reference paths suppress with a justification)",
                )
            )


@rule(
    "RPL002",
    name="dtype-discipline",
    invariant=(
        "designated hot-path modules and aggregate_matrix implementations stay "
        "float32: no np.float64, no dtype-less array constructors, no float64 "
        "astype round-trips"
    ),
    default_paths=("src/repro",),
    default_options={
        "modules": (
            "src/repro/compression/kernels.py",
            "src/repro/collectives/batched.py",
        ),
        "hot_functions": ("aggregate_matrix",),
    },
)
class DtypeDisciplineRule:
    def check(self, tree: ast.AST, ctx) -> Iterator[Finding]:
        modules = tuple(ctx.options.get("modules", ()))
        hot_functions = set(ctx.options.get("hot_functions", ("aggregate_matrix",)))
        whole_module = ctx.relpath in modules
        scope = _HotScope(hot_functions, whole_module)
        scope.aliases = import_aliases(tree)
        scope.visit(tree)
        for node, message in scope.hits:
            yield ctx.finding(node, message)
