"""RPL001: seeded determinism in pricing and simulation paths.

The scenario fuzz suite (PR 5) and the advisor's restart-stable cache keys
(PR 6) both assume that re-running any pricing path with the same inputs
reproduces the same numbers.  A single wall-clock read or a call into a
global RNG breaks that silently: results still *look* plausible, they just
stop replaying.  This rule flags, inside the scoped packages:

* wall-clock reads -- ``time.time``/``monotonic``/``perf_counter`` (and
  their ``_ns`` variants), ``datetime.now``/``utcnow``/``today``;
* the stdlib global RNG -- any call through the ``random`` module;
* numpy's global RNG -- any ``np.random.*`` call that is not an explicitly
  seeded generator construction (``np.random.default_rng(seed)``,
  ``Generator``, ``PCG64(seed)``, ``SeedSequence(seed)``);
* unseeded generator construction -- ``np.random.default_rng()`` with no
  arguments (OS entropy: different on every run).

Legitimate wall-clock uses (operational latency histograms in the service
layer) carry an inline ``# reprolint: disable=RPL001`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import rule
from repro.analysis.rules.base import call_name, import_aliases

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: np.random entry points that construct explicit generator state (allowed
#: when seeded) rather than touching the hidden global RNG.
_GENERATOR_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.MT19937",
    "numpy.random.SeedSequence",
    "numpy.random.BitGenerator",
}


@rule(
    "RPL001",
    name="determinism",
    invariant=(
        "pricing/simulation paths must be replay-deterministic: no wall-clock "
        "reads, no global RNG; randomness flows through seeded "
        "np.random.default_rng(seed)"
    ),
    default_paths=(
        "src/repro/simulator",
        "src/repro/compression",
        "src/repro/collectives",
        "src/repro/api",
        "src/repro/service",
        "src/repro/topology",
    ),
)
class DeterminismRule:
    def check(self, tree: ast.AST, ctx) -> Iterator[Finding]:
        aliases = import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, aliases, require_import=True)
            if name is None:
                continue
            if name in _WALL_CLOCK:
                yield ctx.finding(
                    node,
                    f"wall-clock read `{name}()` breaks replay determinism; "
                    "thread simulated time / timestamps in as arguments "
                    "(suppress inline only for operational telemetry)",
                )
            elif name == "random" or name.startswith("random."):
                yield ctx.finding(
                    node,
                    f"stdlib global RNG `{name}()` is unseeded shared state; "
                    "use a seeded np.random.default_rng(seed) passed "
                    "explicitly",
                )
            elif name.startswith("numpy.random."):
                if name in _GENERATOR_CONSTRUCTORS:
                    if not node.args and not node.keywords:
                        yield ctx.finding(
                            node,
                            f"`{name}()` without a seed draws OS entropy; "
                            "pass an explicit seed so runs replay",
                        )
                else:
                    yield ctx.finding(
                        node,
                        f"numpy global-RNG call `{name}()` bypasses seeded "
                        "Generator state; use np.random.default_rng(seed)",
                    )
