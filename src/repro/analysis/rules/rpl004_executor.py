"""RPL004: pickling and shared-state safety at the process-pool boundary.

``repro.api.executors.run_tasks(..., executor="process")`` ships its
function and tasks to forked workers via pickle.  Lambdas, nested closures,
and bound methods of unpicklable objects fail there -- but only at runtime,
on a multi-core machine, under the exact executor resolution that CI's
single-core runners may never take.  And a worker function that mutates
module-level state "works" under fork while silently diverging from the
serial path (each worker mutates its own copy).  This rule flags:

* a lambda, locally nested function, or bound-method attribute passed as
  the function to a ``run_tasks(...)`` call whose ``executor=`` is the
  literal ``"process"`` (non-literal executors are skipped: the rule
  underreports rather than second-guessing dynamic resolution);
* lambdas submitted to a ``ProcessPoolExecutor`` (``pool.submit``/
  ``pool.map`` on a name bound to ``ProcessPoolExecutor(...)``);
* module-level mutable-state writes (``global`` rebinding, ``X[...] =``,
  ``X.append/update/...``) inside any function passed by name to
  ``run_tasks`` -- worker functions must stay side-effect-free.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import rule
from repro.analysis.rules.base import (
    import_aliases,
    module_level_targets,
    qualified_name,
)

_MUTATORS = {
    "append",
    "extend",
    "add",
    "update",
    "insert",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "setdefault",
    "appendleft",
}


def _executor_literal(node: ast.Call) -> str | None:
    for kw in node.keywords:
        if kw.arg == "executor" and isinstance(kw.value, ast.Constant):
            if isinstance(kw.value.value, str):
                return kw.value.value
    return None


def _function_argument(node: ast.Call) -> ast.expr | None:
    if len(node.args) >= 2:
        return node.args[1]
    for kw in node.keywords:
        if kw.arg == "function":
            return kw.value
    return None


def _nested_function_names(tree: ast.AST) -> set[str]:
    """Names of functions defined inside another function (closures)."""
    nested: set[str] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(outer):
            if inner is outer:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(inner.name)
    return nested


def _process_pool_names(tree: ast.AST, aliases: dict[str, str]) -> set[str]:
    """Local names bound to a ProcessPoolExecutor instance."""
    names: set[str] = set()

    def value_is_pool(value: ast.expr | None) -> bool:
        if not isinstance(value, ast.Call):
            return False
        name = qualified_name(value.func, aliases)
        return name is not None and name.endswith("ProcessPoolExecutor")

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and value_is_pool(node.value):
            names.update(
                target.id for target in node.targets if isinstance(target, ast.Name)
            )
        elif isinstance(node, ast.withitem) and value_is_pool(node.context_expr):
            if isinstance(node.optional_vars, ast.Name):
                names.add(node.optional_vars.id)
    return names


@rule(
    "RPL004",
    name="executor-safety",
    invariant=(
        "nothing unpicklable crosses the repro.api.executors process boundary, "
        "and worker functions never write module-level mutable state"
    ),
    default_paths=(),  # anywhere run_tasks / ProcessPoolExecutor is used
)
class ExecutorSafetyRule:
    def check(self, tree: ast.AST, ctx) -> Iterator[Finding]:
        aliases = import_aliases(tree)
        nested = _nested_function_names(tree)
        pools = _process_pool_names(tree, aliases)
        module_targets = module_level_targets(tree) if isinstance(tree, ast.Module) else set()
        worker_names: set[str] = set()

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = qualified_name(node.func, aliases)
            if name is not None and name.split(".")[-1] == "run_tasks":
                function = _function_argument(node)
                if isinstance(function, ast.Name):
                    worker_names.add(function.id)
                if _executor_literal(node) == "process":
                    yield from self._check_process_function(ctx, function, nested)
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in pools
            ):
                for argument in node.args:
                    if isinstance(argument, ast.Lambda):
                        yield ctx.finding(
                            argument,
                            "lambda submitted to a ProcessPoolExecutor cannot "
                            "be pickled; use a module-level function",
                        )

        # Worker functions shipped through run_tasks must be side-effect
        # free: fork gives each worker its own copy of module state, so a
        # write "succeeds" while silently diverging from the serial path.
        if worker_names and module_targets:
            for function in ast.walk(tree):
                if (
                    isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and function.name in worker_names
                ):
                    yield from self._check_worker_body(ctx, function, module_targets)

    # ------------------------------------------------------------------ #
    def _check_process_function(self, ctx, function, nested) -> Iterator[Finding]:
        if function is None:
            return
        if isinstance(function, ast.Lambda):
            yield ctx.finding(
                function,
                "lambda shipped to executor='process' cannot be pickled; "
                "use a module-level function",
            )
        elif isinstance(function, ast.Name) and function.id in nested:
            yield ctx.finding(
                function,
                f"nested function `{function.id}` shipped to "
                "executor='process' closes over local state and cannot be "
                "pickled; hoist it to module level",
            )
        elif isinstance(function, ast.Attribute):
            yield ctx.finding(
                function,
                "bound method shipped to executor='process' pickles its whole "
                "instance (or fails); use a module-level function over "
                "picklable task data",
            )

    def _check_worker_body(self, ctx, function, module_targets) -> Iterator[Finding]:
        for node in ast.walk(function):
            if isinstance(node, ast.Global):
                shared = [name for name in node.names if name in module_targets]
                if shared:
                    yield ctx.finding(
                        node,
                        f"worker function `{function.name}` rebinds module "
                        f"global(s) {', '.join(shared)}; workers must be "
                        "side-effect-free (results travel via return values)",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    base = target
                    while isinstance(base, (ast.Subscript, ast.Attribute)):
                        base = base.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in module_targets
                        and base is not target
                    ):
                        yield ctx.finding(
                            node,
                            f"worker function `{function.name}` writes into "
                            f"module-level `{base.id}`; forked workers mutate "
                            "their own copy and the serial path diverges",
                        )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in module_targets
                ):
                    yield ctx.finding(
                        node,
                        f"worker function `{function.name}` mutates "
                        f"module-level `{node.func.value.id}."
                        f"{node.func.attr}(...)`; workers must be "
                        "side-effect-free",
                    )
