"""RPL003: cache-key and canonicalization purity.

PR 2's sweep-memo bug (memoizing by the ``"2x2"`` display label instead of
the cluster's full identity) is the archetype this rule makes structural:
functions that *define identity* -- ``cache_key`` and ``canonical*`` by
default (configurable via ``function_names``) -- must derive it only from
identity-bearing data.  Inside a matching function this rule flags:

* reads of display attributes (``.name``, ``.label``, ``.display_name``,
  ``.title`` -- configurable via ``display_attrs``): labels are for humans
  and collide across distinct identities;
* ``id(...)`` and ``hash(...)`` / ``__hash__`` reads: process-local (and,
  for strings, ``PYTHONHASHSEED``-dependent), so never restart-stable;
* unsorted dict/set iteration (``for ... in d.items()/keys()/values()``,
  iteration over set literals/constructors): insertion order is not
  identity -- wrap in ``sorted(...)``.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import rule

_DICT_ITER_METHODS = {"items", "keys", "values"}


def _matches(name: str, patterns: tuple[str, ...]) -> bool:
    return any(fnmatch.fnmatchcase(name, pattern) for pattern in patterns)


def _unsorted_iterable(node: ast.expr) -> str | None:
    """Describe the unsorted-iteration hazard of an iterable expr, if any."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _DICT_ITER_METHODS:
            return f"dict .{func.attr}() iteration order"
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return "set iteration order"
    if isinstance(node, ast.Set):
        return "set-literal iteration order"
    return None


class _PurityVisitor(ast.NodeVisitor):
    def __init__(self, display_attrs: set[str]):
        self.display_attrs = display_attrs
        self.hits: list[tuple[ast.AST, str]] = []

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            if node.attr in self.display_attrs:
                self.hits.append(
                    (
                        node,
                        f"reads display attribute `.{node.attr}` inside an "
                        "identity function; display names collide across "
                        "distinct identities -- derive the key from "
                        "identity-bearing fields",
                    )
                )
            elif node.attr == "__hash__":
                self.hits.append(
                    (node, "`__hash__` is process-local; identity keys must be "
                           "restart-stable")
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id in ("id", "hash"):
            self.hits.append(
                (
                    node,
                    f"`{node.func.id}(...)` is process-local (and hash is "
                    "PYTHONHASHSEED-dependent for strings); identity keys "
                    "must be restart-stable",
                )
            )
        self.generic_visit(node)

    # ---------------- unsorted iteration ------------------------------- #
    def _check_iter(self, iterable: ast.expr) -> None:
        hazard = _unsorted_iterable(iterable)
        if hazard is not None:
            self.hits.append(
                (
                    iterable,
                    f"{hazard} is not identity; wrap in sorted(...) so the "
                    "key is order-independent",
                )
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)


@rule(
    "RPL003",
    name="cache-key-purity",
    invariant=(
        "cache_key/canonical* functions derive identity only from "
        "identity-bearing data: no display names, no id()/hash(), no unsorted "
        "dict/set iteration"
    ),
    default_paths=("src",),
    default_options={
        "function_names": ("cache_key", "canonical*", "point_key"),
        "display_attrs": ("name", "label", "display_name", "title"),
    },
)
class CacheKeyPurityRule:
    def check(self, tree: ast.AST, ctx) -> Iterator[Finding]:
        patterns = tuple(ctx.options.get("function_names", ()))
        display_attrs = set(ctx.options.get("display_attrs", ()))
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _matches(node.name, patterns):
                continue
            visitor = _PurityVisitor(display_attrs)
            for statement in node.body:
                visitor.visit(statement)
            for hit, message in visitor.hits:
                yield ctx.finding(hit, message)
