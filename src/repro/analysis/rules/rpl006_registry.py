"""RPL006: the scheme-registry hot-path contract.

Every ``@register``-ed scheme family is priced through two entry points the
rest of the system assumes exist *deliberately*: ``aggregate_matrix`` (the
PR 4 batched backend -- falling back to the base implementation silently
costs the 13.9-22.5x speedup) and ``estimate_bucket_costs`` (the PR 2
pipeline simulator's layer-aware pricing -- the base default is a uniform
split that is wrong for layer-aware schemes like PowerSGD).  A newly
registered family that merely *forgets* one of them still runs, just slower
or subtly mispriced.

This semantic pass over class bodies requires each ``@register``-ed class
to either define both methods or state the inheritance explicitly::

    class MyScheme(AggregationScheme):
        # uniform per-bucket split of estimate_cost is correct here
        estimate_bucket_costs = AggregationScheme.estimate_bucket_costs

so "uses the default" is always a reviewed decision, never an accident.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import rule
from repro.analysis.rules.base import decorator_base_name

_REQUIRED = ("aggregate_matrix", "estimate_bucket_costs")


def _register_decorator(node: ast.ClassDef) -> bool:
    return any(
        decorator_base_name(decorator) == "register" for decorator in node.decorator_list
    )


def _defined_names(node: ast.ClassDef) -> set[str]:
    """Method defs and explicit-inheritance assignments in the class body."""
    names: set[str] = set()
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(statement.name)
        elif isinstance(statement, ast.Assign):
            names.update(
                target.id
                for target in statement.targets
                if isinstance(target, ast.Name)
            )
        elif isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            names.add(statement.target.id)
    return names


@rule(
    "RPL006",
    name="registry-contract",
    invariant=(
        "every @register-ed scheme defines aggregate_matrix and "
        "estimate_bucket_costs, or explicitly inherits them "
        "(`name = Base.name`) so the default is a reviewed decision"
    ),
    default_paths=("src/repro",),
    default_options={"required_methods": _REQUIRED},
)
class RegistryContractRule:
    def check(self, tree: ast.AST, ctx) -> Iterator[Finding]:
        required = tuple(ctx.options.get("required_methods", _REQUIRED))
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _register_decorator(node):
                continue
            defined = _defined_names(node)
            missing = [name for name in required if name not in defined]
            if missing:
                yield ctx.finding(
                    node,
                    f"@register-ed scheme `{node.name}` neither defines nor "
                    f"explicitly inherits: {', '.join(missing)}; add the "
                    "implementation or state the inheritance "
                    "(`method = Base.method`) so the default is deliberate",
                )
