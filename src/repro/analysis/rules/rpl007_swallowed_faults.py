"""RPL007: no swallowed faults.

The recovery layer (PR 9) exists because faults must be *handled*: retried,
degraded around, counted, surfaced.  A broad ``except Exception: pass`` (or
``except: continue``) in a recovery, retry, or service path silently
converts a real fault into nothing -- no log line, no counter, no re-raise
-- which is exactly the failure mode the recovery counters were added to
make visible.  This rule flags exception handlers that

* catch broadly (a bare ``except:``, ``Exception``, or ``BaseException``,
  alone or anywhere in a tuple), and
* do nothing at all: a body consisting solely of ``pass`` / ``continue`` /
  ``break`` (docstrings and ``...`` placeholders included).

Handlers that log, count, re-raise, return a fallback, or catch a *narrow*
exception type (a deliberate, named decision) never trip it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import rule

#: Exception names whose interception counts as "broad".
_BROAD_NAMES = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Whether the handler intercepts every fault (bare / Exception / tuple)."""
    if handler.type is None:  # bare `except:`
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    for entry in types:
        if isinstance(entry, ast.Name) and entry.id in _BROAD_NAMES:
            return True
        if isinstance(entry, ast.Attribute) and entry.attr in _BROAD_NAMES:
            return True
    return False


def _is_noop(statement: ast.stmt) -> bool:
    """Pass/continue/break, or an expression-statement constant (docstring, ...)."""
    if isinstance(statement, (ast.Pass, ast.Continue, ast.Break)):
        return True
    return isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant)


@rule(
    "RPL007",
    name="no-swallowed-faults",
    invariant=(
        "broad exception handlers never silently discard the fault: they log, "
        "count, re-raise, or degrade explicitly instead of pass/continue"
    ),
    default_paths=("src/repro",),
)
class NoSwallowedFaultsRule:
    def check(self, tree: ast.AST, ctx) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if all(_is_noop(statement) for statement in node.body):
                caught = "bare except" if node.type is None else "except Exception"
                yield ctx.finding(
                    node,
                    f"{caught} swallows the fault without logging, counting, or "
                    "re-raising; handle it explicitly (log + degrade, re-raise, "
                    "or catch the narrow exception you actually expect)",
                )
