"""The finding model shared by every reprolint rule and reporter.

A :class:`Finding` is one rule violation anchored to a ``file:line:col``
location.  Findings are plain frozen data so reporters, tests, and the JSON
artifact all consume the same shape; :meth:`Finding.to_dict` is the single
source of truth for the JSON schema (``schema_version`` lives on the report,
see :mod:`repro.analysis.reporting`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Attributes:
        path: Path of the offending file, POSIX-style, relative to the
            analysis root (so reports are machine-independent).
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        rule: Rule code (``"RPL001"``).
        message: Human-readable description, stating the broken invariant.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def location(self) -> str:
        """The clickable ``path:line:col`` prefix used by the text reporter."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        """JSON-safe representation (one entry of the report's ``findings``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
