"""A single DDP worker: one GPU's slice of the data and its gradient compute.

In data-parallel training every worker holds a full model replica and a shard
of the data; each round it samples a mini-batch from its shard and computes
the gradient of the shared parameters on that batch.  The trainer then
aggregates the per-worker gradients through the configured scheme.
"""

from __future__ import annotations

import numpy as np

from repro.training.data import DatasetShard
from repro.training.models import Model


class DDPWorker:
    """One data-parallel worker.

    Args:
        rank: Worker index (0-based).
        shard: The worker's slice of the training data.
        batch_size: Mini-batch size sampled each round.
        seed: Seed of the worker's private sampling stream.
    """

    def __init__(self, rank: int, shard: DatasetShard, batch_size: int, seed: int = 0):
        if rank < 0:
            raise ValueError("rank must be non-negative")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.rank = rank
        self.shard = shard
        self.batch_size = batch_size
        self._rng = np.random.default_rng((seed, rank))

    def compute_gradient(self, model: Model) -> tuple[float, np.ndarray]:
        """Sample a mini-batch and return (loss, flat gradient) on it.

        The model's parameters are read but not modified; the trainer owns
        the parameter update.
        """
        batch = self.shard.sample_batch(self.batch_size, self._rng)
        return model.loss_and_gradient(batch)
