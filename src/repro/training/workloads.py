"""Workload descriptors: the paper-scale facts about each training job.

The TTA and throughput experiments need two kinds of information:

* the *paper-scale* facts used to price a round -- how many gradient
  coordinates the real model has (345M for BERT-large, 144M for VGG19), its
  layer shapes (for PowerSGD's factor sizes), and how long the forward/
  backward compute of one round takes on the testbed at each training
  precision (calibrated against the paper's Table 2 baselines);
* the *simulation-scale* configuration of the NumPy model that is actually
  trained so compression error has a real effect on convergence.

Both live in a :class:`WorkloadSpec`; the two presets correspond to the
paper's two tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulator.gpu import Precision


def bert_large_layer_shapes() -> list[tuple[int, int]]:
    """Weight-matrix shapes of BERT-large (345M parameters).

    24 transformer layers x (4 attention projections of 1024x1024 + the two
    4096-wide FFN matrices), the 30522x1024 token embedding, position/segment
    embeddings, and the pooler.  Biases and LayerNorm parameters (~0.6M) are
    not matrices and travel uncompressed.
    """
    layers: list[tuple[int, int]] = []
    for _ in range(24):
        layers.extend([(1024, 1024)] * 4)
        layers.append((1024, 4096))
        layers.append((4096, 1024))
    layers.append((30522, 1024))  # token embedding (tied with the MLM decoder)
    layers.append((512, 1024))  # position embedding
    layers.append((2, 1024))  # segment embedding
    layers.append((1024, 1024))  # pooler
    layers.append((1024, 1024))  # MLM transform
    return layers


def vgg19_layer_shapes(num_classes: int = 200) -> list[tuple[int, int]]:
    """Weight-matrix shapes of VGG19 with a ``num_classes``-way classifier.

    Convolutional kernels are reshaped to (out_channels, in_channels * 3 * 3)
    as PowerSGD does; TinyImageNet's 200-way head replaces the ImageNet one.
    """
    conv_plan = [
        (64, 3), (64, 64),
        (128, 64), (128, 128),
        (256, 128), (256, 256), (256, 256), (256, 256),
        (512, 256), (512, 512), (512, 512), (512, 512),
        (512, 512), (512, 512), (512, 512), (512, 512),
    ]
    layers = [(out_ch, in_ch * 9) for out_ch, in_ch in conv_plan]
    layers.append((4096, 512 * 7 * 7))
    layers.append((4096, 4096))
    layers.append((num_classes, 4096))
    return layers


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything the experiments need to know about one training job.

    Attributes:
        name: Short identifier ("bert_large", "vgg19").
        metric: The goal metric the paper reports ("perplexity" or "accuracy").
        metric_improves: "down" if smaller is better (perplexity), "up" otherwise.
        paper_num_coordinates: Gradient size of the real model.
        paper_layer_shapes: Weight-matrix shapes of the real model.
        compute_seconds: Per-round forward+backward+optimizer time on the
            testbed, keyed by training precision (calibrated to Table 2).
        per_worker_batch_size: The paper's per-worker batch size.
        rolling_window_rounds: Window of the rolling average applied to the
            paper's TTA curves.
        sim_input_dim / sim_hidden_dims / sim_num_classes: Geometry of the
            NumPy stand-in model used for functional training.
        sim_batch_size: Per-worker batch size of the stand-in model.
        sim_base_lr: Learning rate used by the stand-in training runs.
    """

    name: str
    metric: str
    metric_improves: str
    paper_num_coordinates: int
    paper_layer_shapes: list[tuple[int, int]] = field(default_factory=list)
    compute_seconds: dict[Precision, float] = field(default_factory=dict)
    per_worker_batch_size: int = 32
    rolling_window_rounds: int = 100
    sim_input_dim: int = 64
    sim_hidden_dims: tuple[int, ...] = (128, 128)
    sim_num_classes: int = 16
    sim_batch_size: int = 32
    sim_base_lr: float = 0.1

    def __post_init__(self) -> None:
        if self.paper_num_coordinates <= 0:
            raise ValueError("paper_num_coordinates must be positive")
        if self.metric not in ("perplexity", "accuracy"):
            raise ValueError("metric must be 'perplexity' or 'accuracy'")
        if self.metric_improves not in ("up", "down"):
            raise ValueError("metric_improves must be 'up' or 'down'")

    def compute_seconds_for(self, precision: Precision = Precision.TF32) -> float:
        """Per-round compute time at the given training precision."""
        if precision not in self.compute_seconds:
            raise KeyError(
                f"workload {self.name} has no compute time for {precision}; "
                f"available: {sorted(p.value for p in self.compute_seconds)}"
            )
        return self.compute_seconds[precision]

    def covered_coordinates(self) -> int:
        """How many coordinates the layer matrices cover (rest are 1-D params)."""
        return sum(rows * cols for rows, cols in self.paper_layer_shapes)


def bert_large_wikitext() -> WorkloadSpec:
    """BERT-large masked language modeling on WikiText-103 (paper task 1).

    Compute times are calibrated so that the uncompressed baselines match
    Table 2 (TF32+FP16 at 3.32 rounds/s, FP32+FP16 at 3.17 rounds/s) once the
    simulated FP16 all-reduce time of a 345M-coordinate gradient (~138 ms on
    the testbed model) is added.
    """
    shapes = bert_large_layer_shapes()
    # Matrices plus ~0.8M one-dimensional parameters (biases, LayerNorm);
    # within a few percent of the 345M the paper quotes.
    num_coordinates = sum(rows * cols for rows, cols in shapes) + 800_000
    return WorkloadSpec(
        name="bert_large",
        metric="perplexity",
        metric_improves="down",
        paper_num_coordinates=num_coordinates,
        paper_layer_shapes=shapes,
        compute_seconds={Precision.TF32: 0.160, Precision.FP32: 0.175},
        per_worker_batch_size=4,
        rolling_window_rounds=3750,
        sim_input_dim=96,
        sim_hidden_dims=(192, 192),
        sim_num_classes=64,
        sim_batch_size=4,
        sim_base_lr=0.25,
    )


def vgg19_tinyimagenet() -> WorkloadSpec:
    """VGG19 classification on TinyImageNet (paper task 2)."""
    shapes = vgg19_layer_shapes(num_classes=200)
    # Matrices plus ~60k one-dimensional parameters (biases); within a few
    # percent of the 144M the paper quotes.
    num_coordinates = sum(rows * cols for rows, cols in shapes) + 60_000
    return WorkloadSpec(
        name="vgg19",
        metric="accuracy",
        metric_improves="up",
        paper_num_coordinates=num_coordinates,
        paper_layer_shapes=shapes,
        compute_seconds={Precision.TF32: 0.047, Precision.FP32: 0.056},
        per_worker_batch_size=32,
        rolling_window_rounds=7810,
        sim_input_dim=64,
        sim_hidden_dims=(160, 160),
        sim_num_classes=32,
        sim_batch_size=32,
        sim_base_lr=0.2,
    )
