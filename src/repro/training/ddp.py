"""The distributed data-parallel trainer: where everything comes together.

Each round the trainer

1. lets every worker compute the gradient of the shared parameters on its own
   mini-batch (functional NumPy compute),
2. aggregates the per-worker gradients through the configured
   :class:`~repro.compression.AggregationScheme` (which applies the real
   compression math and records its cost),
3. applies the aggregated gradient with the optimizer, and
4. advances the *simulated clock* by the per-round time of the paper-scale
   workload: testbed compute time plus the scheme's compression and
   communication time priced at the real model size.

The result is a :class:`TrainingHistory` whose metric-versus-simulated-time
trajectory is exactly the raw material of the paper's TTA figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.collectives.api import CollectiveBackend
from repro.compression.base import AggregationScheme, CostEstimate, SimContext
from repro.compression.kernels import KernelBackend
from repro.simulator.cluster import ClusterSpec, paper_testbed
from repro.simulator.gpu import Precision
from repro.simulator.kernel_cost import KernelCostModel
from repro.simulator.pipeline import (
    bucketed_schedule,
    legacy_overlap_schedule,
    serialized_schedule,
    simulate_schedule,
)
from repro.simulator.recovery import PolicyEngine, RecoveryPolicy, policy as as_policy
from repro.simulator.scenario import Scenario, scenario as as_scenario
from repro.training.adaptive import AdaptiveController, SwitchEvent
from repro.training.data import SyntheticTeacherDataset
from repro.training.models import Model
from repro.training.optimizer import SGD
from repro.training.worker import DDPWorker
from repro.training.workloads import WorkloadSpec


class StoppingCriterion(Protocol):
    """Anything that can decide when a metric trajectory has converged."""

    def update(self, value: float) -> bool:
        """Feed one metric observation; return True when training should stop."""


@dataclass(frozen=True)
class EvaluationRecord:
    """One held-out evaluation point along the training trajectory."""

    round_index: int
    sim_time_seconds: float
    metrics: dict[str, float]


@dataclass
class TrainingHistory:
    """The full trajectory of one training run under one aggregation scheme.

    Attributes:
        workload_name: Which workload preset produced the run.
        scheme_name: Name of the aggregation scheme.
        metric_name: The goal metric ("perplexity" or "accuracy").
        metric_improves: "up" or "down".
        round_seconds: Nominal simulated duration of one round on the
            unperturbed cluster (the constant round time of a static run).
        train_losses: Per-round training loss of worker 0's batch.
        evaluations: Periodic held-out evaluations.
        round_times: Simulated duration of every executed round, in round
            order.  Constant (== ``round_seconds``) for static runs; under a
            dynamic scenario each round is priced on its effective cluster.
        scenario: Canonical spec of the scenario the run executed under, or
            None for a static run.
        policy: Canonical spec of the recovery policy the run executed
            under, or None when no policy was active.
        timed_out_rounds: Rounds whose collective was aborted at the policy
            deadline (their updates were stale-applied or skipped).
        retries: Total collective re-issues across the run.
        dropped_worker_rounds: Sum over rounds of stragglers excused from
            the collective by the drop rule.
        stale_rounds: Timed-out rounds that re-applied the previous
            aggregate instead of skipping the update.
        scheme_switches: The adaptive controller's switch decisions, in
            round order (empty for static-scheme runs).
    """

    workload_name: str
    scheme_name: str
    metric_name: str
    metric_improves: str
    round_seconds: float
    train_losses: list[float] = field(default_factory=list)
    evaluations: list[EvaluationRecord] = field(default_factory=list)
    round_times: list[float] = field(default_factory=list)
    scenario: str | None = None
    policy: str | None = None
    timed_out_rounds: int = 0
    retries: int = 0
    dropped_worker_rounds: int = 0
    stale_rounds: int = 0
    scheme_switches: list[SwitchEvent] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        """Number of training rounds executed."""
        return len(self.train_losses)

    def times(self) -> np.ndarray:
        """Simulated times (seconds) of the evaluation points."""
        return np.array([record.sim_time_seconds for record in self.evaluations])

    def metric_values(self) -> np.ndarray:
        """Goal-metric values at the evaluation points."""
        return np.array([record.metrics[self.metric_name] for record in self.evaluations])

    def final_metric(self) -> float:
        """Goal metric at the last evaluation point."""
        if not self.evaluations:
            raise ValueError("no evaluations recorded")
        return self.evaluations[-1].metrics[self.metric_name]

    def best_metric(self) -> float:
        """Best goal-metric value seen at any evaluation point."""
        values = self.metric_values()
        if values.size == 0:
            raise ValueError("no evaluations recorded")
        return float(values.max() if self.metric_improves == "up" else values.min())

    def throughput_rounds_per_second(self) -> float:
        """Simulated training throughput implied by the per-round time."""
        if self.round_seconds <= 0:
            raise ValueError("round_seconds must be positive")
        return 1.0 / self.round_seconds

    def effective_rounds_per_second(self) -> float:
        """Throughput over the rounds actually simulated.

        Under a dynamic scenario this is ``num_rounds / total_time`` of the
        recorded per-round times -- the run-level throughput the tail events
        actually allowed -- while static runs keep the exact nominal
        ``1 / round_seconds`` (no re-derivation through a sum, so static
        numbers stay bit-identical to the historical closed form).
        """
        if not self.round_times or all(
            time == self.round_seconds for time in self.round_times
        ):
            return self.throughput_rounds_per_second()
        total = sum(self.round_times)
        if total <= 0:
            raise ValueError("round times must be positive")
        return len(self.round_times) / total


class DDPTrainer:
    """Trains one model with one aggregation scheme on a simulated cluster.

    Args:
        model: The NumPy model being trained (shared by all workers).
        dataset: Synthetic dataset providing per-worker shards and a test set.
        scheme: Aggregation scheme applied to the per-worker gradients.
        workload: Paper-scale workload facts used to price each round.
        cluster: Simulated cluster (defaults to the paper testbed).
        optimizer: Parameter update rule (defaults to SGD with momentum).
        pricing_scheme: Optional second scheme instance used only to price
            the round at ``workload.paper_num_coordinates`` (useful when the
            functional scheme is configured for the small simulation model,
            e.g. PowerSGD layer shapes).  Defaults to ``scheme``.
        training_precision: Precision of the forward/backward compute used to
            look up the workload's per-round compute time.
        eval_every: Rounds between held-out evaluations.
        seed: Seed for worker batch sampling and scheme randomness.
        num_buckets: Gradient buckets per round.  With more than one bucket
            the round is priced by the bucketed pipeline simulator: early
            buckets' collectives interleave with the rest of the backward
            pass and with later buckets' compression, and heterogeneous
            clusters (stragglers, mixed NIC tiers) are priced exactly.
        kernel_backend: Compression hot-path implementation: ``"batched"``
            (default, fused vectorized kernels over the stacked worker
            matrix) or ``"legacy"`` (per-worker float64 reference loops).
        overlap_fraction: Deprecated scalar shim -- fraction of communication
            hidden behind compute (0 = fully exposed).  Evaluated through the
            pipeline simulator's two-stage legacy schedule, which matches
            :meth:`RoundTimeline.total_time`'s historical closed form: at
            most the compute time can be hidden, so communication-bound
            rounds no longer hide time that had nothing to hide behind (the
            trainer's old unclamped ``comm * (1 - f)`` overstated overlap
            there).  Cannot be combined with ``num_buckets > 1``.
        scenario: Optional dynamic-events scenario
            (:class:`~repro.simulator.scenario.Scenario` or a spec string).
            Each round is then priced on the scenario's effective cluster for
            that round (stragglers, link flaps, switch memory pressure), and
            elastic membership events (join/leave) change which workers
            contribute gradients: leave drops the highest ranks, join adds
            fresh workers (error-feedback residuals reset on membership
            changes, as a real elastic job's would).  A scenario with no
            events is bit-exact with a static run.
        policy: Optional fault-recovery policy
            (:class:`~repro.simulator.recovery.RecoveryPolicy` or a spec
            string like ``"timeout(k=3) + retry(max=2)"``) applied to the
            scenario's rounds: deadlines abort degraded collectives, retries
            re-issue them, the drop rule excuses stragglers from the
            collective (their gradients do not contribute -- the explicit
            variance penalty of partial aggregation), and timed-out rounds
            re-apply the previous aggregate (stale) or skip the update.
            Requires ``scenario``; an empty policy is bit-exact with the
            plain scenario path.
        controller: Optional online
            :class:`~repro.training.adaptive.AdaptiveController` that
            watches windowed round-time telemetry and switches the active
            scheme mid-run when the cost model says another candidate is
            now faster (with hysteresis, cooldown, and an explicit switch
            cost).  Requires ``candidate_schemes`` and ``active_spec``.
        candidate_schemes: ``spec -> (functional, pricing)`` scheme pairs
            the controller may switch between; must cover every controller
            candidate.
        active_spec: Spec label of the initial scheme (must be one of the
            controller's candidates).
    """

    def __init__(
        self,
        model: Model,
        dataset: SyntheticTeacherDataset,
        scheme: AggregationScheme,
        workload: WorkloadSpec,
        *,
        cluster: ClusterSpec | None = None,
        optimizer: SGD | None = None,
        pricing_scheme: AggregationScheme | None = None,
        training_precision: Precision = Precision.TF32,
        eval_every: int = 10,
        seed: int = 0,
        num_buckets: int = 1,
        overlap_fraction: float | None = None,
        kernel_backend: KernelBackend | str = KernelBackend.BATCHED,
        scenario: Scenario | str | None = None,
        policy: RecoveryPolicy | str | None = None,
        controller: AdaptiveController | None = None,
        candidate_schemes: (
            dict[str, tuple[AggregationScheme, AggregationScheme]] | None
        ) = None,
        active_spec: str | None = None,
    ):
        if eval_every <= 0:
            raise ValueError("eval_every must be positive")
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        if overlap_fraction is not None and not 0.0 <= overlap_fraction <= 1.0:
            raise ValueError("overlap_fraction must be in [0, 1]")
        if overlap_fraction is not None and num_buckets > 1:
            raise ValueError(
                "overlap_fraction is a legacy shim; use num_buckets without it"
            )
        self.model = model
        self.dataset = dataset
        self.scheme = scheme
        self.workload = workload
        self.cluster = cluster or paper_testbed()
        self.optimizer = optimizer or SGD(workload.sim_base_lr)
        self.training_precision = training_precision
        self.eval_every = eval_every
        self.seed = seed
        self.num_buckets = num_buckets
        self.overlap_fraction = overlap_fraction
        self.scenario = as_scenario(scenario) if scenario is not None else None
        self.policy = as_policy(policy)
        if not self.policy.is_empty and self.scenario is None:
            raise ValueError(
                "a recovery policy only applies to scenario runs; pass "
                'scenario= as well (scenario="static" for an explicit '
                "no-event run)"
            )
        self.controller = controller
        if controller is not None:
            if candidate_schemes is None:
                raise ValueError(
                    "controller requires candidate_schemes: a spec -> "
                    "(functional, pricing) mapping covering its candidates"
                )
            missing = [
                spec for spec in controller.candidates if spec not in candidate_schemes
            ]
            if missing:
                raise ValueError(
                    f"candidate_schemes is missing controller candidates: {missing}"
                )
            if active_spec is None or active_spec not in controller.candidates:
                raise ValueError(
                    "active_spec must name the initial scheme and be one of "
                    f"the controller's candidates {controller.candidates}"
                )
        self._candidate_schemes = dict(candidate_schemes or {})
        self._active_spec = active_spec

        backend = CollectiveBackend(self.cluster)
        # One context for the whole run: the batched kernels' workspace is
        # reused round after round, so steady-state rounds allocate nothing.
        self._ctx = SimContext(
            backend=backend,
            kernels=KernelCostModel(gpu=self.cluster.gpu),
            rng=np.random.default_rng(seed),
            kernel_backend=KernelBackend.coerce(kernel_backend),
        )
        self.workers = [
            DDPWorker(
                rank=rank,
                shard=dataset.worker_shard(rank, self.cluster.world_size),
                batch_size=workload.sim_batch_size,
                seed=seed,
            )
            for rank in range(self.cluster.world_size)
        ]

        self._pricing = pricing_scheme or scheme
        self._compute_seconds = workload.compute_seconds_for(training_precision)
        costs, self.round_pipeline = self._price_round_on(self.cluster, self._ctx)
        self.round_seconds = self.round_pipeline.makespan_seconds
        self.round_cost_estimate = costs
        # Per-round pricing and functional contexts under a dynamic scenario,
        # memoized by effective-cluster identity / world size respectively.
        self._round_price_cache: dict[object, float] = {
            self.cluster.cache_key(): self.round_seconds
        }
        self._ctx_by_world: dict[int, SimContext] = {self.cluster.world_size: self._ctx}
        # Adaptive-mode caches: cost-only contexts per effective cluster and
        # per-(candidate spec, cluster) round prices for the controller's
        # cost-model consultations.
        self._pricing_ctx_cache: dict[object, SimContext] = {}
        self._candidate_price_cache: dict[tuple[str, object], float] = {}

    # ------------------------------------------------------------------ #
    def _price_round_on(
        self,
        cluster: ClusterSpec,
        ctx: SimContext,
        *,
        pricing: AggregationScheme | None = None,
        deadline_seconds: float | None = None,
    ):
        """Price one paper-scale round on ``cluster`` (schedule + simulate)."""
        pricing = pricing if pricing is not None else self._pricing
        if self.overlap_fraction is not None:
            costs = pricing.estimate_costs(self.workload.paper_num_coordinates, ctx)
            schedule = legacy_overlap_schedule(
                self._compute_seconds,
                costs.compression_seconds,
                costs.communication_seconds,
                overlap_fraction=self.overlap_fraction,
            )
        else:
            bucket_costs = pricing.estimate_bucket_costs(
                self.workload.paper_num_coordinates, self.num_buckets, ctx
            )
            costs = CostEstimate(
                compression_seconds=sum(b.compression_seconds for b in bucket_costs),
                communication_seconds=sum(b.communication_seconds for b in bucket_costs),
                bits_per_coordinate=bucket_costs[0].bits_per_coordinate,
            )
            if len(bucket_costs) == 1:
                schedule = serialized_schedule(
                    self._compute_seconds,
                    costs.compression_seconds,
                    costs.communication_seconds,
                )
            else:
                schedule = bucketed_schedule(
                    self._compute_seconds,
                    [
                        (b.compression_seconds, b.communication_seconds)
                        for b in bucket_costs
                    ],
                )
        return costs, simulate_schedule(
            schedule, cluster, deadline_seconds=deadline_seconds
        )

    def _round_seconds_for(self, effective: ClusterSpec) -> float:
        """Round time on an effective cluster, memoized by its cache key."""
        key = effective.cache_key()
        cached = self._round_price_cache.get(key)
        if cached is None:
            # No scenario event changes the GPU model, so the base context's
            # kernel cost model (custom factors included) is reused verbatim.
            kernels = (
                self._ctx.kernels
                if effective.gpu == self.cluster.gpu
                else KernelCostModel(gpu=effective.gpu)
            )
            ctx = SimContext(
                backend=CollectiveBackend(effective),
                kernels=kernels,
                kernel_backend=self._ctx.kernel_backend,
            )
            cached = self._price_round_on(effective, ctx)[1].makespan_seconds
            self._round_price_cache[key] = cached
        return cached

    def _pricing_ctx(self, effective: ClusterSpec) -> SimContext:
        """A cost-only context for an effective cluster, memoized by key."""
        key = effective.cache_key()
        ctx = self._pricing_ctx_cache.get(key)
        if ctx is None:
            kernels = (
                self._ctx.kernels
                if effective.gpu == self.cluster.gpu
                else KernelCostModel(gpu=effective.gpu)
            )
            ctx = SimContext(
                backend=CollectiveBackend(effective),
                kernels=kernels,
                kernel_backend=self._ctx.kernel_backend,
            )
            self._pricing_ctx_cache[key] = ctx
        return ctx

    def _candidate_seconds(self, spec: str, effective: ClusterSpec) -> float:
        """A candidate scheme's round time on ``effective`` (memoized)."""
        key = (spec, effective.cache_key())
        cached = self._candidate_price_cache.get(key)
        if cached is None:
            pricing = self._candidate_schemes[spec][1]
            cached = self._price_round_on(
                effective, self._pricing_ctx(effective), pricing=pricing
            )[1].makespan_seconds
            self._candidate_price_cache[key] = cached
        return cached

    def _nominal_seconds(self) -> float:
        """The active scheme's round time on the unperturbed cluster."""
        if self._active_spec is None:
            return self.round_seconds
        return self._candidate_seconds(self._active_spec, self.cluster)

    def _engine_price(self, cluster: ClusterSpec, deadline: float | None):
        """Recovery-engine pricing callback: (makespan, aborted-at-deadline)."""
        result = self._price_round_on(
            cluster, self._pricing_ctx(cluster), deadline_seconds=deadline
        )[1]
        return result.makespan_seconds, result.aborted

    def _make_engine(self) -> PolicyEngine:
        return PolicyEngine(
            self.cluster,
            self.scenario,
            self.policy,
            self._engine_price,
            nominal_seconds=self._nominal_seconds(),
        )

    def _switch_to(self, spec: str) -> None:
        """Activate a candidate scheme pair (fresh residual/compressor state)."""
        functional, pricing = self._candidate_schemes[spec]
        self.scheme = functional
        self._pricing = pricing
        self._active_spec = spec

    def _functional_ctx(
        self, effective: ClusterSpec, world_size: int | None = None
    ) -> SimContext:
        """The aggregation context for an effective cluster's world size.

        Only membership (world size) affects the functional math, so contexts
        are cached per world size; all of them share the base context's rng
        stream, keeping scheme randomness a single deterministic sequence.
        Passing ``world_size`` smaller than the effective cluster's models a
        partial aggregation (drop-straggler rounds contribute n - f
        gradients without a membership change).
        """
        size = world_size if world_size is not None else effective.world_size
        ctx = self._ctx_by_world.get(size)
        if ctx is None:
            backend_cluster = (
                effective
                if effective.world_size == size
                else ClusterSpec(
                    num_nodes=size,
                    gpus_per_node=1,
                    gpu=self.cluster.gpu,
                    inter_node_nic=self.cluster.inter_node_nic,
                    intra_node_nic=self.cluster.intra_node_nic,
                )
            )
            ctx = SimContext(
                backend=CollectiveBackend(backend_cluster),
                kernels=self._ctx.kernels,
                rng=self._ctx.rng,
                kernel_backend=self._ctx.kernel_backend,
            )
            self._ctx_by_world[size] = ctx
        return ctx

    def _active_workers(self, world_size: int) -> list[DDPWorker]:
        """The first ``world_size`` workers, growing the pool on join events."""
        while len(self.workers) < world_size:
            rank = len(self.workers)
            self.workers.append(
                DDPWorker(
                    rank=rank,
                    shard=self.dataset.worker_shard(rank, world_size),
                    batch_size=self.workload.sim_batch_size,
                    seed=self.seed,
                )
            )
        return self.workers[:world_size]

    # ------------------------------------------------------------------ #
    def _evaluate(self, round_index: int, sim_time: float) -> EvaluationRecord:
        metrics = self.model.evaluate(self.dataset.test_batch())
        return EvaluationRecord(
            round_index=round_index, sim_time_seconds=sim_time, metrics=metrics
        )

    def run(
        self,
        num_rounds: int,
        *,
        stopping: StoppingCriterion | None = None,
    ) -> TrainingHistory:
        """Train for up to ``num_rounds`` rounds (less if ``stopping`` fires).

        Returns:
            The metric-versus-simulated-time trajectory of the run.
        """
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")

        dynamic = self.scenario is not None and not self.scenario.is_static
        adaptive = self.controller is not None
        use_policy = dynamic and not self.policy.is_empty
        engine = self._make_engine() if use_policy else None
        history = TrainingHistory(
            workload_name=self.workload.name,
            scheme_name=self.scheme.name,
            metric_name=self.workload.metric,
            metric_improves=self.workload.metric_improves,
            round_seconds=self.round_seconds,
            scenario=self.scenario.spec() if self.scenario is not None else None,
            policy=None if self.policy.is_empty else self.policy.spec(),
        )
        history.evaluations.append(self._evaluate(0, 0.0))

        params = self.model.get_flat_params()
        last_aggregate: np.ndarray | None = None
        sim_time = 0.0
        for round_index in range(1, num_rounds + 1):
            resolution = None
            if engine is not None:
                resolution = engine.resolve(
                    round_index - 1, can_stale=last_aggregate is not None
                )
                effective = resolution.cluster
                round_time = resolution.seconds
                workers = self._active_workers(effective.world_size)
                if resolution.excused_ranks:
                    excused = set(resolution.excused_ranks)
                    workers = [w for w in workers if w.rank not in excused]
                ctx = self._functional_ctx(effective, world_size=len(workers))
            elif dynamic:
                effective = self.scenario.cluster_at(self.cluster, round_index - 1)
                round_time = (
                    self._candidate_seconds(self._active_spec, effective)
                    if adaptive
                    else self._round_seconds_for(effective)
                )
                ctx = self._functional_ctx(effective)
                workers = self._active_workers(effective.world_size)
            else:
                effective = self.cluster
                round_time = self._nominal_seconds() if adaptive else self.round_seconds
                ctx = self._ctx
                workers = self.workers
            losses = []
            gradients = []
            for worker in workers:
                loss, gradient = worker.compute_gradient(self.model)
                losses.append(loss)
                gradients.append(gradient)
            history.train_losses.append(float(losses[0]))
            history.round_times.append(round_time)

            if resolution is not None and resolution.timed_out:
                # The collective aborted at the deadline: either re-apply the
                # previous round's aggregate (stale) or skip the update.
                if resolution.stale and last_aggregate is not None:
                    params = self.optimizer.step(params, last_aggregate)
                    self.model.set_flat_params(params)
            else:
                result = self.scheme.aggregate(gradients, ctx)
                last_aggregate = result.mean_estimate
                params = self.optimizer.step(params, result.mean_estimate)
                self.model.set_flat_params(params)

            # The static accumulation stays the historical closed form
            # (round_index * round_seconds) so static runs are bit-exact.
            sim_time = (
                sim_time + round_time
                if dynamic or adaptive
                else round_index * self.round_seconds
            )
            if adaptive:
                chosen = self.controller.observe(
                    round_index,
                    self._active_spec,
                    round_time,
                    self._nominal_seconds(),
                    lambda spec: self._candidate_seconds(spec, effective),
                )
                if chosen != self._active_spec:
                    self._switch_to(chosen)
                    # Re-bucketing and residual warmup are not free: charge
                    # the controller's switch cost to the simulated clock.
                    sim_time += (
                        self.controller.switch_cost_rounds * self._nominal_seconds()
                    )
                    # The old scheme's aggregate is not a valid stale update
                    # for the new one (different compression error profile).
                    last_aggregate = None
                    if engine is not None:
                        successor = self._make_engine()
                        successor.adopt_state(engine)
                        engine = successor
            if round_index % self.eval_every == 0 or round_index == num_rounds:
                record = self._evaluate(round_index, sim_time)
                history.evaluations.append(record)
                if stopping is not None and stopping.update(
                    record.metrics[self.workload.metric]
                ):
                    break
        if engine is not None:
            history.timed_out_rounds = engine.timed_out_rounds
            history.retries = engine.retries
            history.dropped_worker_rounds = engine.dropped_worker_rounds
            history.stale_rounds = engine.stale_rounds
        if adaptive:
            history.scheme_switches = list(self.controller.switches)
        return history
