"""Synthetic supervised datasets with a ground-truth teacher.

The paper evaluates on TinyImageNet classification (top-1 accuracy) and
WikiText-103 masked language modeling (perplexity).  Neither dataset ships
with this repository, so training runs on synthetic teacher-student problems
that preserve what matters for the paper's argument: a model trained with SGD
on mini-batch gradients whose convergence speed and final quality degrade
when the aggregated gradient is distorted by compression.

A :class:`SyntheticTeacherDataset` draws inputs from a Gaussian and labels
from a noisy random teacher network, yielding a task that is learnable but
not trivially so; classification accuracy plays the role of VGG19 top-1 and
``exp(cross entropy)`` plays the role of BERT perplexity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Batch:
    """A mini-batch of supervised examples."""

    inputs: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.inputs.ndim != 2:
            raise ValueError("inputs must be (batch, features)")
        if self.labels.ndim != 1 or self.labels.shape[0] != self.inputs.shape[0]:
            raise ValueError("labels must be one per input row")

    @property
    def size(self) -> int:
        """Number of examples in the batch."""
        return self.inputs.shape[0]


class SyntheticTeacherDataset:
    """Classification data labelled by a noisy random teacher network.

    Args:
        num_examples: Total pool of training examples (drawn once, then
            sampled into per-worker mini-batches).
        num_test_examples: Held-out examples used for evaluation.
        input_dim: Feature dimensionality.
        num_classes: Number of labels (200 mimics TinyImageNet's class count;
            a larger value gives a language-modeling-flavoured task).
        teacher_hidden_dim: Width of the teacher's hidden layer.
        label_noise: Probability of replacing a teacher label with a uniform
            random one (keeps the task from being perfectly separable).
        seed: Generation seed; the dataset is fully deterministic given it.
    """

    def __init__(
        self,
        num_examples: int = 8192,
        num_test_examples: int = 2048,
        input_dim: int = 64,
        num_classes: int = 16,
        teacher_hidden_dim: int = 48,
        label_noise: float = 0.05,
        seed: int = 0,
    ):
        if num_examples <= 0 or num_test_examples <= 0:
            raise ValueError("dataset sizes must be positive")
        if input_dim <= 0 or num_classes < 2 or teacher_hidden_dim <= 0:
            raise ValueError("invalid dataset geometry")
        if not 0.0 <= label_noise < 1.0:
            raise ValueError("label_noise must be in [0, 1)")
        self.input_dim = input_dim
        self.num_classes = num_classes
        self.label_noise = label_noise
        self.seed = seed

        rng = np.random.default_rng(seed)
        self._teacher_w1 = rng.standard_normal((input_dim, teacher_hidden_dim)) / np.sqrt(
            input_dim
        )
        self._teacher_w2 = rng.standard_normal((teacher_hidden_dim, num_classes)) / np.sqrt(
            teacher_hidden_dim
        )
        self.train_inputs, self.train_labels = self._generate(rng, num_examples)
        self.test_inputs, self.test_labels = self._generate(rng, num_test_examples)

    def _generate(
        self, rng: np.random.Generator, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        inputs = rng.standard_normal((count, self.input_dim))
        hidden = np.tanh(inputs @ self._teacher_w1)
        logits = hidden @ self._teacher_w2
        labels = np.argmax(logits, axis=1)
        noisy = rng.random(count) < self.label_noise
        labels[noisy] = rng.integers(0, self.num_classes, size=int(noisy.sum()))
        return inputs.astype(np.float32), labels.astype(np.int64)

    # ------------------------------------------------------------------ #
    @property
    def num_train(self) -> int:
        """Number of training examples."""
        return self.train_inputs.shape[0]

    def worker_shard(self, rank: int, world_size: int) -> "DatasetShard":
        """The contiguous slice of the training pool owned by one worker."""
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        if not 0 <= rank < world_size:
            raise ValueError("rank out of range")
        indices = np.arange(rank, self.num_train, world_size)
        return DatasetShard(
            inputs=self.train_inputs[indices], labels=self.train_labels[indices]
        )

    def test_batch(self) -> Batch:
        """The full held-out evaluation set as one batch."""
        return Batch(inputs=self.test_inputs, labels=self.test_labels)


@dataclass(frozen=True)
class DatasetShard:
    """One worker's slice of the training pool."""

    inputs: np.ndarray
    labels: np.ndarray

    @property
    def size(self) -> int:
        """Number of examples in the shard."""
        return self.inputs.shape[0]

    def sample_batch(self, batch_size: int, rng: np.random.Generator) -> Batch:
        """Draw a mini-batch with replacement from this shard."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        indices = rng.integers(0, self.size, size=batch_size)
        return Batch(inputs=self.inputs[indices], labels=self.labels[indices])
