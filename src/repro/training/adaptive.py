"""Online adaptive scheme selection: switch specs when the ranking inverts.

PR 5's ``table6_faulty`` experiment shows that scheme rankings *invert*
under faults -- the spec that wins on a quiet cluster (say PowerSGD, with
its tiny payloads) can lose badly while a straggler window is active, and
the offline answer ("re-run the sweep, pick the other scheme") arrives
after the damage is done.  Telemetry-driven hotspot detection (O&M-metric
work in PAPERS.md) is the model for closing this loop *online*: watch the
windowed round-time telemetry mid-training, and when it shows the active
scheme degraded, consult the cost model for every candidate on the
*current* effective cluster and switch -- with hysteresis, a cooldown, and
an explicit switch cost so the controller does not thrash.

:class:`AdaptiveController` is deliberately trainer-agnostic: it sees only
round indices, observed round times, and a pricing callback, so the same
object drives :class:`~repro.training.ddp.DDPTrainer` runs and offline
what-if replays.  The decision rule:

1. every round, record the observed round time in a sliding window;
2. when the windowed p95 exceeds ``hysteresis`` x the active scheme's
   nominal round time (the degradation trigger), or every ``check_every``
   rounds (the drift check, which also switches *back* after recovery),
   price every candidate spec on the current effective cluster;
3. switch to the best candidate only if the active scheme is more than
   ``hysteresis`` x slower than it, and no switch happened within the last
   ``cooldown`` rounds; each switch costs ``switch_cost_rounds`` nominal
   rounds of simulated time (re-bucketing, residual resets, warmup).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.simulator.scenario import ScenarioMetrics, scenario_metrics

__all__ = ["AdaptiveController", "SwitchEvent"]


@dataclass(frozen=True)
class SwitchEvent:
    """One controller decision to change the active scheme.

    Attributes:
        round_index: Training round (1-indexed, as the trainer counts) the
            switch happened after.
        from_spec / to_spec: The scheme specs involved.
        observed_p95_seconds: Windowed p95 round time that (together with
            the periodic drift check) motivated pricing the candidates.
        predicted_from_seconds / predicted_to_seconds: Cost-model round
            times of the two schemes on the effective cluster at the
            moment of the switch.
    """

    round_index: int
    from_spec: str
    to_spec: str
    observed_p95_seconds: float
    predicted_from_seconds: float
    predicted_to_seconds: float


class AdaptiveController:
    """Windowed-telemetry scheme switcher with hysteresis and cooldown.

    Args:
        candidates: Scheme spec strings the controller may switch between.
            The trainer's initial scheme must be one of them.
        window: Sliding-window length (rounds) of the round-time telemetry;
            the degradation trigger needs a full window before it can fire.
        hysteresis: Both the degradation trigger (windowed p95 above
            ``hysteresis * nominal``) and the switch margin (the active
            scheme must price more than ``hysteresis`` x the best
            candidate) -- must be >= 1; larger values switch later but
            never thrash on noise.
        cooldown: Minimum rounds between switches.
        check_every: Period (rounds) of the drift check that re-prices the
            candidates even without a degradation trigger; this is what
            switches *back* once a fault window ends.
        switch_cost_rounds: Simulated cost of one switch, in nominal round
            times of the scheme being switched *to* (the trainer charges
            it to the clock).
    """

    def __init__(
        self,
        candidates: Sequence[str],
        *,
        window: int = 8,
        hysteresis: float = 1.2,
        cooldown: int = 10,
        check_every: int = 5,
        switch_cost_rounds: float = 1.0,
    ):
        self.candidates = list(dict.fromkeys(candidates))
        if not self.candidates:
            raise ValueError("the controller needs at least one candidate spec")
        if len(self.candidates) != len(candidates):
            raise ValueError("candidate specs must be unique")
        if window < 1:
            raise ValueError("window must be >= 1")
        if hysteresis < 1.0:
            raise ValueError(
                "hysteresis must be >= 1 (it is the switch margin; below 1 "
                "the controller would flap between near-equal schemes)"
            )
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        if switch_cost_rounds < 0:
            raise ValueError("switch_cost_rounds must be non-negative")
        self.window = window
        self.hysteresis = hysteresis
        self.cooldown = cooldown
        self.check_every = check_every
        self.switch_cost_rounds = switch_cost_rounds
        self.switches: list[SwitchEvent] = []
        self._times: deque[float] = deque(maxlen=window)
        self._last_switch_round: int | None = None

    def windowed_metrics(self, nominal_seconds: float) -> ScenarioMetrics | None:
        """Tail summary of the telemetry window (None before any observation)."""
        if not self._times:
            return None
        return scenario_metrics(list(self._times), nominal_seconds)

    def observe(
        self,
        round_index: int,
        active: str,
        round_seconds: float,
        nominal_seconds: float,
        price: Callable[[str], float],
    ) -> str:
        """Record one round's telemetry and return the spec to run next.

        Args:
            round_index: The round just executed (1-indexed).
            active: Spec of the scheme that executed it.
            round_seconds: Its observed (charged) duration.
            nominal_seconds: The active scheme's nominal round time on the
                unperturbed cluster.
            price: Callback pricing a candidate spec's round on the
                *current* effective cluster (the cost-model consultation).

        Returns:
            ``active``, or the spec to switch to (the switch is recorded
            in :attr:`switches`; the caller charges the switch cost).
        """
        if active not in self.candidates:
            raise ValueError(f"active spec {active!r} is not a candidate")
        self._times.append(round_seconds)
        if (
            self._last_switch_round is not None
            and round_index - self._last_switch_round < self.cooldown
        ):
            return active
        metrics = self.windowed_metrics(nominal_seconds)
        degraded = (
            len(self._times) == self.window
            and metrics is not None
            and metrics.p95_round_seconds > self.hysteresis * nominal_seconds
        )
        periodic = round_index % self.check_every == 0
        if not (degraded or periodic):
            return active
        predictions = {spec: price(spec) for spec in self.candidates}
        best = min(self.candidates, key=lambda spec: predictions[spec])
        if best == active or predictions[active] <= self.hysteresis * predictions[best]:
            return active
        self.switches.append(
            SwitchEvent(
                round_index=round_index,
                from_spec=active,
                to_spec=best,
                observed_p95_seconds=(
                    metrics.p95_round_seconds if metrics is not None else round_seconds
                ),
                predicted_from_seconds=predictions[active],
                predicted_to_seconds=predictions[best],
            )
        )
        self._last_switch_round = round_index
        # The window mixes regimes across a switch; start telemetry afresh.
        self._times.clear()
        return best
