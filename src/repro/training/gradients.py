"""Synthetic gradient generators for compression-error studies.

The vNMSE experiments (Tables 4 and 7) measure how well a scheme's aggregate
approximates the true mean gradient.  Running them on white noise would miss
the two statistical properties of real deep-network gradients that the
paper's argument relies on:

* **Heavy tails / non-uniform energy** -- a small fraction of coordinates
  carries most of the gradient energy, which is why TopK-style sparsification
  works at all.
* **Spatial locality** -- large coordinates cluster (contiguous filters,
  attention heads, embedding rows), which is exactly what TopKC's chunk
  heuristic exploits and what Table 4's random-permutation ablation destroys.
* **Inter-worker similarity** -- workers compute gradients of the same loss
  on different mini-batches, so their gradients share a common component plus
  per-worker mini-batch noise.

:class:`SyntheticGradientModel` generates per-worker gradients with all three
properties, with tunable strength for each.
"""

from __future__ import annotations

import numpy as np


class SyntheticGradientModel:
    """Generates rounds of per-worker gradients with realistic structure.

    Each round's true gradient is ``envelope * heavy_tailed_noise`` where the
    envelope is piecewise-constant over blocks of ``locality_block``
    coordinates with log-normal block scales (heavy tails + spatial
    locality).  Each worker observes the true gradient plus independent
    Gaussian mini-batch noise scaled by ``worker_noise``.

    Args:
        num_coordinates: Gradient dimensionality ``d``.
        locality_block: Number of consecutive coordinates sharing one block
            scale.  Larger blocks mean stronger spatial locality.
        block_scale_sigma: Sigma of the log-normal block scales; larger
            values make the energy distribution heavier-tailed.
        worker_noise: Standard deviation of per-worker noise relative to the
            true gradient's scale.
        low_rank_fraction: Fraction of the gradient energy explained by a
            shared low-rank component (gives PowerSGD something to find).
        rank: Rank of that shared component.
        seed: Base seed; each round uses an independent substream.
    """

    def __init__(
        self,
        num_coordinates: int,
        *,
        locality_block: int = 64,
        block_scale_sigma: float = 1.5,
        worker_noise: float = 0.5,
        low_rank_fraction: float = 0.3,
        rank: int = 8,
        seed: int = 0,
    ):
        if num_coordinates <= 0:
            raise ValueError("num_coordinates must be positive")
        if locality_block <= 0:
            raise ValueError("locality_block must be positive")
        if block_scale_sigma < 0 or worker_noise < 0:
            raise ValueError("scales must be non-negative")
        if not 0.0 <= low_rank_fraction <= 1.0:
            raise ValueError("low_rank_fraction must be in [0, 1]")
        if rank <= 0:
            raise ValueError("rank must be positive")
        self.num_coordinates = num_coordinates
        self.locality_block = locality_block
        self.block_scale_sigma = block_scale_sigma
        self.worker_noise = worker_noise
        self.low_rank_fraction = low_rank_fraction
        self.rank = rank
        self.seed = seed
        self._round = 0

        # The block envelope is a property of the model architecture, not of
        # the round, so it is drawn once.
        envelope_rng = np.random.default_rng(seed)
        num_blocks = -(-num_coordinates // locality_block)
        block_scales = envelope_rng.lognormal(
            mean=0.0, sigma=block_scale_sigma, size=num_blocks
        )
        self._envelope = np.repeat(block_scales, locality_block)[:num_coordinates]

        # Fixed low-rank basis shared across rounds (mimics slowly varying
        # curvature directions).
        rows = max(1, int(np.sqrt(num_coordinates)))
        cols = -(-num_coordinates // rows)
        self._basis_left = envelope_rng.standard_normal((rows, self.rank))
        self._basis_right = envelope_rng.standard_normal((self.rank, cols))
        self._matrix_shape = (rows, cols)

    # ------------------------------------------------------------------ #
    @property
    def envelope(self) -> np.ndarray:
        """The per-coordinate scale envelope (exposes the spatial structure)."""
        return self._envelope

    def _low_rank_component(self, rng: np.random.Generator) -> np.ndarray:
        rows, cols = self._matrix_shape
        mixing = rng.standard_normal((self.rank, self.rank)) / np.sqrt(self.rank)
        matrix = self._basis_left @ mixing @ self._basis_right
        return matrix.reshape(rows * cols)[: self.num_coordinates]

    def next_round(self, num_workers: int) -> list[np.ndarray]:
        """Generate the per-worker gradients of the next round.

        Returns:
            A list of ``num_workers`` float32 vectors of length ``d``.
        """
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        rng = np.random.default_rng((self.seed, self._round))
        self._round += 1

        dense = rng.standard_normal(self.num_coordinates) * self._envelope
        low_rank = self._low_rank_component(rng)
        if np.linalg.norm(low_rank) > 0:
            low_rank *= np.linalg.norm(dense) / np.linalg.norm(low_rank)
        true_gradient = (
            (1.0 - self.low_rank_fraction) * dense + self.low_rank_fraction * low_rank
        )
        # Keep gradients at a realistic magnitude (unit RMS): real training
        # gradients are O(1) per coordinate, and FP16 wire formats (chunk
        # norms, payload values) must not overflow.
        rms = float(np.sqrt(np.mean(np.square(true_gradient))))
        if rms > 0:
            true_gradient = true_gradient / rms

        envelope_rms = float(np.sqrt(np.mean(np.square(self._envelope))))
        normalized_envelope = (
            self._envelope / envelope_rms if envelope_rms > 0 else self._envelope
        )
        gradients = []
        for _ in range(num_workers):
            noise = (
                rng.standard_normal(self.num_coordinates)
                * self.worker_noise
                * normalized_envelope
            )
            gradients.append((true_gradient + noise).astype(np.float32))
        return gradients

    def true_mean(self, worker_gradients: list[np.ndarray]) -> np.ndarray:
        """The exact mean the schemes are trying to estimate."""
        if not worker_gradients:
            raise ValueError("need at least one worker gradient")
        return np.mean(np.stack(worker_gradients), axis=0)
