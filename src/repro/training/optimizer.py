"""Optimizers and learning-rate schedules for the training substrate."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LearningRateSchedule:
    """Constant learning rate with optional linear warm-up and cosine decay.

    Args:
        base_lr: Learning rate after warm-up.
        warmup_rounds: Number of rounds to ramp linearly from 0 to ``base_lr``.
        total_rounds: Horizon of the cosine decay; ``None`` disables decay.
        min_lr_fraction: Floor of the decayed learning rate as a fraction of
            ``base_lr``.
    """

    base_lr: float = 0.1
    warmup_rounds: int = 0
    total_rounds: int | None = None
    min_lr_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.base_lr <= 0:
            raise ValueError("base_lr must be positive")
        if self.warmup_rounds < 0:
            raise ValueError("warmup_rounds must be non-negative")
        if self.total_rounds is not None and self.total_rounds <= 0:
            raise ValueError("total_rounds must be positive when set")
        if not 0.0 <= self.min_lr_fraction <= 1.0:
            raise ValueError("min_lr_fraction must be in [0, 1]")

    def learning_rate(self, round_index: int) -> float:
        """Learning rate to use at the given (zero-based) round."""
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        if self.warmup_rounds and round_index < self.warmup_rounds:
            return self.base_lr * (round_index + 1) / self.warmup_rounds
        if self.total_rounds is None:
            return self.base_lr
        progress = min(1.0, round_index / self.total_rounds)
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        floor = self.base_lr * self.min_lr_fraction
        return floor + (self.base_lr - floor) * cosine


class SGD:
    """Stochastic gradient descent with momentum and weight decay.

    Operates on flat parameter vectors, matching the model interface used by
    the DDP trainer.
    """

    def __init__(
        self,
        schedule: LearningRateSchedule | float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        if isinstance(schedule, (int, float)):
            schedule = LearningRateSchedule(base_lr=float(schedule))
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.schedule = schedule
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: np.ndarray | None = None
        self._round = 0

    def reset_state(self) -> None:
        """Clear the momentum buffer and the round counter."""
        self._velocity = None
        self._round = 0

    def step(self, params: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """Return the updated parameter vector (inputs are not modified)."""
        if params.shape != gradient.shape:
            raise ValueError("params and gradient must have the same shape")
        gradient = gradient.astype(np.float64)
        if self.weight_decay:
            gradient = gradient + self.weight_decay * params.astype(np.float64)
        if self._velocity is None:
            self._velocity = np.zeros_like(gradient)
        self._velocity = self.momentum * self._velocity + gradient
        lr = self.schedule.learning_rate(self._round)
        self._round += 1
        return (params.astype(np.float64) - lr * self._velocity).astype(np.float32)
