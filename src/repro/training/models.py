"""NumPy models trained by the DDP substrate.

Two model families are provided:

* :class:`SoftmaxRegression` -- a linear classifier, useful for fast tests.
* :class:`MLPClassifier` -- a multi-layer perceptron with tanh activations;
  large enough (tens of thousands to millions of parameters, depending on
  the configured widths) for compression error to matter, and structured in
  named layers so PowerSGD can operate per layer matrix.

Both expose the flat-parameter-vector interface the DDP trainer works with:
``get_flat_params`` / ``set_flat_params`` / ``gradient(batch)`` returning a
flat gradient, plus ``layer_shapes`` describing the 2-D weight matrices.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.training.data import Batch


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of predicted probabilities against integer labels."""
    if probabilities.shape[0] != labels.shape[0]:
        raise ValueError("batch sizes do not match")
    clipped = np.clip(probabilities[np.arange(labels.shape[0]), labels], 1e-12, 1.0)
    return float(-np.mean(np.log(clipped)))


class Model(abc.ABC):
    """A trainable model with a flat-parameter interface."""

    @property
    @abc.abstractmethod
    def num_parameters(self) -> int:
        """Total number of trainable scalars."""

    @property
    @abc.abstractmethod
    def layer_shapes(self) -> list[tuple[int, int]]:
        """Shapes of the 2-D weight matrices (excluding biases)."""

    @abc.abstractmethod
    def get_flat_params(self) -> np.ndarray:
        """The current parameters as one flat float32 vector."""

    @abc.abstractmethod
    def set_flat_params(self, flat: np.ndarray) -> None:
        """Overwrite the parameters from a flat vector."""

    @abc.abstractmethod
    def loss_and_gradient(self, batch: Batch) -> tuple[float, np.ndarray]:
        """Mean loss on the batch and the flat gradient of that loss."""

    @abc.abstractmethod
    def evaluate(self, batch: Batch) -> dict[str, float]:
        """Evaluation metrics on a held-out batch (loss, accuracy, perplexity)."""


class SoftmaxRegression(Model):
    """A linear softmax classifier (weights + bias)."""

    def __init__(self, input_dim: int, num_classes: int, seed: int = 0):
        if input_dim <= 0 or num_classes < 2:
            raise ValueError("invalid model geometry")
        rng = np.random.default_rng(seed)
        self.input_dim = input_dim
        self.num_classes = num_classes
        self.weights = (rng.standard_normal((input_dim, num_classes)) * 0.01).astype(
            np.float64
        )
        self.bias = np.zeros(num_classes, dtype=np.float64)

    @property
    def num_parameters(self) -> int:
        return self.weights.size + self.bias.size

    @property
    def layer_shapes(self) -> list[tuple[int, int]]:
        return [(self.input_dim, self.num_classes)]

    def get_flat_params(self) -> np.ndarray:
        return np.concatenate([self.weights.ravel(), self.bias]).astype(np.float32)

    def set_flat_params(self, flat: np.ndarray) -> None:
        if flat.size != self.num_parameters:
            raise ValueError("flat parameter vector has the wrong size")
        split = self.weights.size
        self.weights = flat[:split].reshape(self.weights.shape).astype(np.float64)
        self.bias = flat[split:].astype(np.float64)

    def _forward(self, inputs: np.ndarray) -> np.ndarray:
        return softmax(inputs @ self.weights + self.bias)

    def loss_and_gradient(self, batch: Batch) -> tuple[float, np.ndarray]:
        probabilities = self._forward(batch.inputs)
        loss = cross_entropy(probabilities, batch.labels)
        delta = probabilities.copy()
        delta[np.arange(batch.size), batch.labels] -= 1.0
        delta /= batch.size
        grad_w = batch.inputs.T @ delta
        grad_b = delta.sum(axis=0)
        gradient = np.concatenate([grad_w.ravel(), grad_b]).astype(np.float32)
        return loss, gradient

    def evaluate(self, batch: Batch) -> dict[str, float]:
        probabilities = self._forward(batch.inputs)
        loss = cross_entropy(probabilities, batch.labels)
        accuracy = float(np.mean(np.argmax(probabilities, axis=1) == batch.labels))
        return {"loss": loss, "accuracy": accuracy, "perplexity": float(np.exp(loss))}


class MLPClassifier(Model):
    """A tanh MLP classifier with an arbitrary stack of hidden layers.

    Args:
        input_dim: Feature dimensionality.
        hidden_dims: Width of each hidden layer, in order.
        num_classes: Output classes.
        seed: Initialisation seed.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dims: tuple[int, ...] = (128, 128),
        num_classes: int = 16,
        seed: int = 0,
    ):
        if input_dim <= 0 or num_classes < 2:
            raise ValueError("invalid model geometry")
        if not hidden_dims or any(h <= 0 for h in hidden_dims):
            raise ValueError("hidden_dims must be a non-empty tuple of positive widths")
        self.input_dim = input_dim
        self.hidden_dims = tuple(hidden_dims)
        self.num_classes = num_classes

        rng = np.random.default_rng(seed)
        dims = [input_dim, *hidden_dims, num_classes]
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(dims[:-1], dims[1:]):
            scale = np.sqrt(2.0 / (fan_in + fan_out))
            self.weights.append(
                (rng.standard_normal((fan_in, fan_out)) * scale).astype(np.float64)
            )
            self.biases.append(np.zeros(fan_out, dtype=np.float64))

    # ------------------------------------------------------------------ #
    @property
    def num_parameters(self) -> int:
        return sum(w.size for w in self.weights) + sum(b.size for b in self.biases)

    @property
    def layer_shapes(self) -> list[tuple[int, int]]:
        return [w.shape for w in self.weights]

    def get_flat_params(self) -> np.ndarray:
        pieces = [w.ravel() for w in self.weights] + [b for b in self.biases]
        return np.concatenate(pieces).astype(np.float32)

    def set_flat_params(self, flat: np.ndarray) -> None:
        if flat.size != self.num_parameters:
            raise ValueError("flat parameter vector has the wrong size")
        offset = 0
        for index, weight in enumerate(self.weights):
            size = weight.size
            self.weights[index] = (
                flat[offset : offset + size].reshape(weight.shape).astype(np.float64)
            )
            offset += size
        for index, bias in enumerate(self.biases):
            size = bias.size
            self.biases[index] = flat[offset : offset + size].astype(np.float64)
            offset += size

    # ------------------------------------------------------------------ #
    def _forward(self, inputs: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        activations = [inputs.astype(np.float64)]
        current = activations[0]
        for weight, bias in zip(self.weights[:-1], self.biases[:-1]):
            current = np.tanh(current @ weight + bias)
            activations.append(current)
        logits = current @ self.weights[-1] + self.biases[-1]
        return activations, softmax(logits)

    def loss_and_gradient(self, batch: Batch) -> tuple[float, np.ndarray]:
        activations, probabilities = self._forward(batch.inputs)
        loss = cross_entropy(probabilities, batch.labels)

        delta = probabilities.copy()
        delta[np.arange(batch.size), batch.labels] -= 1.0
        delta /= batch.size

        weight_grads: list[np.ndarray] = [np.empty(0)] * len(self.weights)
        bias_grads: list[np.ndarray] = [np.empty(0)] * len(self.biases)
        for layer in reversed(range(len(self.weights))):
            weight_grads[layer] = activations[layer].T @ delta
            bias_grads[layer] = delta.sum(axis=0)
            if layer > 0:
                upstream = delta @ self.weights[layer].T
                delta = upstream * (1.0 - activations[layer] ** 2)

        pieces = [g.ravel() for g in weight_grads] + list(bias_grads)
        return loss, np.concatenate(pieces).astype(np.float32)

    def evaluate(self, batch: Batch) -> dict[str, float]:
        _, probabilities = self._forward(batch.inputs)
        loss = cross_entropy(probabilities, batch.labels)
        accuracy = float(np.mean(np.argmax(probabilities, axis=1) == batch.labels))
        return {"loss": loss, "accuracy": accuracy, "perplexity": float(np.exp(loss))}
