"""Distributed data-parallel (DDP) training substrate.

The paper's prototypes train BERT-large and VGG19 with PyTorch DDP on a GPU
testbed.  This package provides the simulation stand-in:

* real (small) trainable models implemented in NumPy
  (:mod:`repro.training.models`) on synthetic teacher datasets
  (:mod:`repro.training.data`), so that compression error genuinely affects
  convergence and final accuracy;
* synthetic gradient generators that match the statistical structure of deep
  network gradients -- heavy tails, spatial locality, inter-worker similarity
  (:mod:`repro.training.gradients`) -- for the compression-error studies;
* workload descriptors that carry the paper-scale facts (345M / 144M
  parameters, layer shapes, per-round compute time) used to price each round
  (:mod:`repro.training.workloads`);
* the DDP trainer that ties workers, an aggregation scheme, and the cost
  models together into a time-to-accuracy run (:mod:`repro.training.ddp`);
* the online adaptive controller that watches round-time telemetry and
  switches the active scheme mid-run when scenario faults invert the
  scheme ranking (:mod:`repro.training.adaptive`).
"""

from repro.training.adaptive import AdaptiveController, SwitchEvent
from repro.training.data import SyntheticTeacherDataset
from repro.training.ddp import DDPTrainer, TrainingHistory
from repro.training.gradients import SyntheticGradientModel
from repro.training.models import MLPClassifier, SoftmaxRegression
from repro.training.optimizer import SGD, LearningRateSchedule
from repro.training.worker import DDPWorker
from repro.training.workloads import (
    WorkloadSpec,
    bert_large_wikitext,
    vgg19_tinyimagenet,
)

__all__ = [
    "AdaptiveController",
    "SwitchEvent",
    "SyntheticTeacherDataset",
    "DDPTrainer",
    "TrainingHistory",
    "SyntheticGradientModel",
    "MLPClassifier",
    "SoftmaxRegression",
    "SGD",
    "LearningRateSchedule",
    "DDPWorker",
    "WorkloadSpec",
    "bert_large_wikitext",
    "vgg19_tinyimagenet",
]
