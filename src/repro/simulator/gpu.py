"""GPU performance model.

Models the aspects of a data-centre GPU (the paper uses the NVIDIA A100) that
matter for gradient compression:

* arithmetic throughput that depends on the numeric precision (FP16 and TF32
  run much faster than FP32 on tensor-core hardware);
* a two-level memory hierarchy -- a small, fast *shared* memory per streaming
  multiprocessor and a large but slow *global* memory.  Kernels whose working
  set spills out of shared memory, or whose access pattern is non-sequential
  (the top-k selection and large Hadamard transforms the paper profiles), pay
  a bandwidth penalty.

The model is intentionally analytic: given an operation count, a precision and
a memory-access characterisation, it returns a simulated execution time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Precision(enum.Enum):
    """Numeric precision of an arithmetic operation or a wire format."""

    FP32 = "fp32"
    TF32 = "tf32"
    FP16 = "fp16"
    INT8 = "int8"

    @property
    def bits(self) -> int:
        """Width of one value of this precision on the wire, in bits."""
        return _PRECISION_BITS[self]


_PRECISION_BITS = {
    Precision.FP32: 32,
    Precision.TF32: 32,  # TF32 is a compute format; storage stays 32-bit
    Precision.FP16: 16,
    Precision.INT8: 8,
}


@dataclass(frozen=True)
class MemoryHierarchy:
    """Shared/global memory sizes and bandwidths of one GPU.

    Attributes:
        shared_memory_bytes: Per-SM shared memory capacity.  The partial
            rotation optimisation (paper section 3.2.2) chooses the rotation
            depth so one chunk fits here.
        global_bandwidth_gbps: Global (HBM) memory bandwidth in GB/s.
        shared_bandwidth_gbps: Effective shared-memory bandwidth in GB/s.
        random_access_penalty: Multiplicative slowdown applied to kernels with
            poor locality (non-consecutive accesses), e.g. top-k selection and
            coordinate rearrangement.
    """

    shared_memory_bytes: int = 164 * 1024
    global_bandwidth_gbps: float = 1555.0
    shared_bandwidth_gbps: float = 19400.0
    random_access_penalty: float = 4.0

    def fits_in_shared(self, nbytes: int) -> bool:
        """Return True if a working set of ``nbytes`` fits in shared memory."""
        return nbytes <= self.shared_memory_bytes

    def max_shared_elements(self, element_bytes: int) -> int:
        """Largest number of elements of ``element_bytes`` each that fit in shared memory."""
        if element_bytes <= 0:
            raise ValueError("element_bytes must be positive")
        return self.shared_memory_bytes // element_bytes


@dataclass(frozen=True)
class GpuModel:
    """Analytic model of a single GPU.

    Default values approximate an NVIDIA A100-SXM4-40GB:
    19.5 TFLOP/s FP32, 156 TFLOP/s TF32 (tensor core), 312 TFLOP/s FP16.
    The efficiency factor discounts peak numbers to a sustained rate typical
    of memory-bound elementwise kernels.
    """

    name: str = "A100"
    fp32_tflops: float = 19.5
    tf32_tflops: float = 156.0
    fp16_tflops: float = 312.0
    memory: MemoryHierarchy = field(default_factory=MemoryHierarchy)
    efficiency: float = 0.35
    kernel_launch_overhead_s: float = 5e-6

    def flops_per_second(self, precision: Precision) -> float:
        """Sustained FLOP/s for the given precision."""
        peak = {
            Precision.FP32: self.fp32_tflops,
            Precision.TF32: self.tf32_tflops,
            Precision.FP16: self.fp16_tflops,
            Precision.INT8: self.fp16_tflops * 2.0,
        }[precision]
        return peak * 1e12 * self.efficiency

    def compute_time(self, flops: float, precision: Precision = Precision.FP32) -> float:
        """Simulated time to execute ``flops`` floating-point operations."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        if flops == 0:
            return 0.0
        return self.kernel_launch_overhead_s + flops / self.flops_per_second(precision)

    def memory_time(
        self,
        nbytes: float,
        *,
        sequential: bool = True,
        in_shared: bool = False,
    ) -> float:
        """Simulated time to move ``nbytes`` through the memory system.

        Args:
            nbytes: Bytes read plus bytes written by the kernel.
            sequential: Whether accesses are coalesced/sequential.  Poorly
                localised kernels pay :attr:`MemoryHierarchy.random_access_penalty`.
            in_shared: Whether the working set is served from shared memory.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        bandwidth = (
            self.memory.shared_bandwidth_gbps if in_shared else self.memory.global_bandwidth_gbps
        )
        seconds = nbytes / (bandwidth * 1e9)
        if not sequential:
            seconds *= self.memory.random_access_penalty
        return self.kernel_launch_overhead_s + seconds

    def elementwise_time(
        self,
        num_elements: int,
        *,
        flops_per_element: float = 1.0,
        bytes_per_element: float = 8.0,
        precision: Precision = Precision.FP32,
        sequential: bool = True,
        in_shared: bool = False,
    ) -> float:
        """Time of a simple elementwise kernel: max of compute and memory time.

        GPUs overlap arithmetic with memory traffic, so the roofline model
        (max of the two) is the right first-order approximation.
        """
        if num_elements < 0:
            raise ValueError("num_elements must be non-negative")
        compute = self.compute_time(num_elements * flops_per_element, precision)
        memory = self.memory_time(
            num_elements * bytes_per_element, sequential=sequential, in_shared=in_shared
        )
        return max(compute, memory)
