"""Hardware and timing simulator substrate.

The paper's prototypes run on a physical testbed (2 nodes x 2 NVIDIA A100
GPUs, Mellanox ConnectX-6 100 Gbps NICs).  This package provides the analytic
stand-in for that hardware: a GPU model with precision-dependent arithmetic
rates and a shared/global memory hierarchy, a NIC model, per-kernel cost
models for the computationally heavy components the paper profiles (top-k
selection, randomized Hadamard transform, Gram-Schmidt orthogonalization,
quantization), a per-round :class:`RoundTimeline` that adds everything up
into simulated wall-clock time, and the bucketed pipeline simulator
(:mod:`repro.simulator.pipeline`) that schedules per-bucket
compress/collective/decompress events on per-worker resources -- including
heterogeneous clusters with stragglers and mixed NIC tiers.

All times are in seconds of *simulated* time.  Absolute values are calibrated
against the paper's reported throughputs (Tables 2, 5, 8, 9) but only the
relative behaviour -- which component dominates, how design changes shift the
balance -- is claimed to reproduce.
"""

from repro.simulator.gpu import GpuModel, MemoryHierarchy, Precision
from repro.simulator.nic import NicModel
from repro.simulator.kernel_cost import KernelCostModel
from repro.simulator.pipeline import (
    BucketCost,
    BucketTrace,
    PipelineResult,
    bucketed_schedule,
    legacy_overlap_makespan,
    legacy_overlap_schedule,
    serialized_schedule,
    simulate_schedule,
    split_coordinates,
)
from repro.simulator.timeline import RoundTimeline, TimelineEntry
from repro.simulator.cluster import (
    MATERIALIZATION_LIMIT,
    ClusterSpec,
    WorkerClass,
    WorkerProfile,
    dcell_cluster,
    fat_tree_cluster,
    multirack_cluster,
    paper_testbed,
    torus_cluster,
)
from repro.simulator.recovery import (
    PolicyEngine,
    PolicyRule,
    RecoveredRun,
    RecoveryPolicy,
    RoundResolution,
    available_policy_rules,
    deadline_clamp,
    drop_stragglers,
    parse_policy,
    policy,
    retry,
    run_recovered_scenario,
    stale_gradients,
    timeout,
)
from repro.simulator.scenario import (
    Scenario,
    ScenarioEvent,
    ScenarioMetrics,
    ScenarioRun,
    available_events,
    churn,
    domain_fail,
    join,
    leave,
    link_flap,
    nic_degrade,
    parse_scenario,
    run_scenario,
    scenario,
    scenario_metrics,
    slowdown,
    switch_memory_pressure,
)

__all__ = [
    "BucketCost",
    "BucketTrace",
    "ClusterSpec",
    "GpuModel",
    "KernelCostModel",
    "MATERIALIZATION_LIMIT",
    "MemoryHierarchy",
    "NicModel",
    "PipelineResult",
    "PolicyEngine",
    "PolicyRule",
    "Precision",
    "RecoveredRun",
    "RecoveryPolicy",
    "RoundResolution",
    "RoundTimeline",
    "Scenario",
    "ScenarioEvent",
    "ScenarioMetrics",
    "ScenarioRun",
    "TimelineEntry",
    "WorkerClass",
    "WorkerProfile",
    "available_events",
    "available_policy_rules",
    "bucketed_schedule",
    "churn",
    "dcell_cluster",
    "deadline_clamp",
    "domain_fail",
    "drop_stragglers",
    "fat_tree_cluster",
    "join",
    "leave",
    "legacy_overlap_makespan",
    "legacy_overlap_schedule",
    "link_flap",
    "multirack_cluster",
    "nic_degrade",
    "paper_testbed",
    "parse_policy",
    "parse_scenario",
    "policy",
    "retry",
    "run_recovered_scenario",
    "run_scenario",
    "scenario",
    "scenario_metrics",
    "serialized_schedule",
    "simulate_schedule",
    "slowdown",
    "split_coordinates",
    "stale_gradients",
    "switch_memory_pressure",
    "timeout",
    "torus_cluster",
]
