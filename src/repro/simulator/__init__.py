"""Hardware and timing simulator substrate.

The paper's prototypes run on a physical testbed (2 nodes x 2 NVIDIA A100
GPUs, Mellanox ConnectX-6 100 Gbps NICs).  This package provides the analytic
stand-in for that hardware: a GPU model with precision-dependent arithmetic
rates and a shared/global memory hierarchy, a NIC model, per-kernel cost
models for the computationally heavy components the paper profiles (top-k
selection, randomized Hadamard transform, Gram-Schmidt orthogonalization,
quantization), and a per-round :class:`Timeline` that adds everything up into
simulated wall-clock time.

All times are in seconds of *simulated* time.  Absolute values are calibrated
against the paper's reported throughputs (Tables 2, 5, 8, 9) but only the
relative behaviour -- which component dominates, how design changes shift the
balance -- is claimed to reproduce.
"""

from repro.simulator.gpu import GpuModel, MemoryHierarchy, Precision
from repro.simulator.nic import NicModel
from repro.simulator.kernel_cost import KernelCostModel
from repro.simulator.timeline import RoundTimeline, TimelineEntry
from repro.simulator.cluster import ClusterSpec, paper_testbed

__all__ = [
    "GpuModel",
    "MemoryHierarchy",
    "Precision",
    "NicModel",
    "KernelCostModel",
    "RoundTimeline",
    "TimelineEntry",
    "ClusterSpec",
    "paper_testbed",
]
