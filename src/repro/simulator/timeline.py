"""Per-round time accounting.

A training round in the paper's system consists of forward/backward compute,
gradient compression kernels, the collective communication of the compressed
payload, and decompression/optimizer work.  :class:`RoundTimeline` collects
named contributions in each of those categories and reports the total round
time plus the breakdown the paper uses for its profiling claims (e.g. "TopK's
computation takes ~10 % of the training time", Table 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


#: Canonical phase names used throughout the experiments.
PHASE_COMPUTE = "compute"
PHASE_COMPRESSION = "compression"
PHASE_COMMUNICATION = "communication"
PHASE_DECOMPRESSION = "decompression"
PHASE_OPTIMIZER = "optimizer"

ALL_PHASES = (
    PHASE_COMPUTE,
    PHASE_COMPRESSION,
    PHASE_COMMUNICATION,
    PHASE_DECOMPRESSION,
    PHASE_OPTIMIZER,
)


@dataclass(frozen=True)
class TimelineEntry:
    """One named contribution to a round's time."""

    phase: str
    label: str
    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("seconds must be non-negative")
        if self.phase not in ALL_PHASES:
            raise ValueError(f"unknown phase {self.phase!r}; expected one of {ALL_PHASES}")


@dataclass
class RoundTimeline:
    """Accumulates the simulated time of one training round.

    Phases that can overlap in a real system (e.g. communication of one bucket
    with compression of the next) are modelled by the ``overlap_fraction``:
    that fraction of the communication time is hidden behind compute.

    .. deprecated::
        ``overlap_fraction`` is a legacy scalar shim.  :meth:`total_time`
        evaluates it through the bucketed pipeline simulator
        (:func:`repro.simulator.pipeline.legacy_overlap_makespan`) as a
        two-stage schedule; build a real per-bucket schedule with
        :mod:`repro.simulator.pipeline` to model pipelining, stragglers, or
        heterogeneous clusters.
    """

    overlap_fraction: float = 0.0
    entries: list[TimelineEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.overlap_fraction <= 1.0:
            raise ValueError("overlap_fraction must be in [0, 1]")

    def add(self, phase: str, label: str, seconds: float) -> None:
        """Record ``seconds`` of simulated time under ``phase``/``label``."""
        self.entries.append(TimelineEntry(phase=phase, label=label, seconds=seconds))

    def extend(self, entries: Iterable[TimelineEntry]) -> None:
        """Record several entries at once."""
        for entry in entries:
            self.entries.append(entry)

    def phase_time(self, phase: str) -> float:
        """Total time attributed to one phase."""
        return sum(entry.seconds for entry in self.entries if entry.phase == phase)

    def breakdown(self) -> dict[str, float]:
        """Total time per phase, for every phase (zero if unused)."""
        return {phase: self.phase_time(phase) for phase in ALL_PHASES}

    def total_time(self) -> float:
        """Total round time, accounting for compute/communication overlap.

        Evaluated through the pipeline simulator's two-stage legacy shim,
        which reproduces the historical closed form
        ``other + communication - min(overlap_fraction * communication,
        compute)`` exactly.
        """
        from repro.simulator.pipeline import legacy_overlap_makespan

        return legacy_overlap_makespan(
            self.phase_time(PHASE_COMPUTE),
            self.phase_time(PHASE_COMPRESSION),
            self.phase_time(PHASE_COMMUNICATION),
            self.phase_time(PHASE_DECOMPRESSION),
            self.phase_time(PHASE_OPTIMIZER),
            overlap_fraction=self.overlap_fraction,
        )

    def compression_fraction(self) -> float:
        """Fraction of round time spent in compression + decompression kernels.

        This is the "compression overhead" quantity of Table 6.
        """
        total = self.total_time()
        if total == 0:
            return 0.0
        heavy = self.phase_time(PHASE_COMPRESSION) + self.phase_time(PHASE_DECOMPRESSION)
        return heavy / total

    def rounds_per_second(self) -> float:
        """Throughput implied by this round's total time."""
        total = self.total_time()
        if total <= 0:
            raise ValueError("cannot compute throughput of an empty timeline")
        return 1.0 / total

    def merged_with(self, other: "RoundTimeline") -> "RoundTimeline":
        """Return a new timeline containing the entries of both.

        The merged timeline keeps the *larger* of the two overlap fractions:
        merging must never silently discard the other timeline's overlap
        configuration, and the optimistic bound is the documented choice for
        combining partially-overlapped rounds.
        """
        merged = RoundTimeline(
            overlap_fraction=max(self.overlap_fraction, other.overlap_fraction)
        )
        merged.extend(self.entries)
        merged.extend(other.entries)
        return merged
