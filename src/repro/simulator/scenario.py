"""Dynamic-events scenario engine: faults, churn, and elastic membership.

The paper evaluates its aggregation schemes on a static cluster, but real
deployments are anything but static: stragglers come and go, links degrade
and recover, switches run out of aggregation memory under competing tenants,
and elastic training jobs gain and lose workers mid-run.  Steady-state
averages hide all of that -- transient hotspots dominate *tail* round times,
and scheme rankings that hold on a quiet cluster can invert under churn.

A :class:`Scenario` is a timed sequence of cluster mutations.  Each
:class:`ScenarioEvent` owns a half-open round window ``[start_round,
until_round)`` (``until_round=None`` means "until the end of the run") and a
pure rewrite of the effective :class:`~repro.simulator.cluster.ClusterSpec`
for the rounds in its window:

* :func:`slowdown` -- one worker's compute/kernel clock runs ``x`` times
  slower (a straggler);
* :func:`nic_degrade` -- one worker's NIC drops to ``1/x`` bandwidth;
* :func:`link_flap` -- every worker in one rack loses NIC bandwidth (an
  uplink flapping down to a degraded rate);
* :func:`domain_fail` -- every worker in one fabric *failure domain* (a
  fat-tree pod, a torus plane, a sub-DCell) loses NIC bandwidth;
* :func:`switch_memory_pressure` -- the fabric switches' aggregation pool
  shrinks to a fraction of its size (competing in-network tenants);
* :func:`churn` -- every round, each worker independently becomes a
  straggler with probability ``p`` (deterministic per scenario seed);
* :func:`join` / :func:`leave` -- elastic membership at node granularity.

Scenarios are expressed programmatically (``Scenario.of(slowdown(3, 2.5,
at_round=10, until=40))``) or as composable spec strings mirroring the
scheme-spec language::

    scenario("flap(rack=1)@20..25 + churn(p=0.05)")

The engine rewrites the effective cluster per round (:meth:`
Scenario.cluster_at`); rounds with no active events return the base cluster
*object itself*, so static stretches price bit-exactly like the static
simulator and sweep memoization keys (:meth:`Scenario.cache_key`) stay
correct.  :func:`run_scenario` drives any per-cluster pricing function over
a scenario and summarises the tail behaviour (:class:`ScenarioMetrics`:
p50/p95/p99 round time, excess time attributable to events, recovery).
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.cluster import ClusterSpec


class UnknownEventError(KeyError):
    """An unknown scenario event name, with close-match suggestions."""

    def __init__(self, name: str, known: list[str]):
        self.name = name
        self.known = sorted(known)
        self.suggestions = difflib.get_close_matches(name, self.known, n=3, cutoff=0.5)
        message = f"unknown scenario event {name!r}"
        if self.suggestions:
            message += f"; did you mean: {', '.join(self.suggestions)}?"
        message += f" (known: {', '.join(self.known)})"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError.__str__ shows the repr of args[0]
        return self.args[0]


class ScenarioSyntaxError(ValueError):
    """A scenario spec string that does not conform to the grammar."""

    def __init__(self, text: str, position: int, reason: str):
        self.text = text
        self.position = position
        self.reason = reason
        pointer = " " * position + "^"
        super().__init__(f"invalid scenario spec: {reason}\n  {text}\n  {pointer}")


class ScenarioParamError(ValueError):
    """A well-formed scenario spec whose arguments do not fit the event."""


class ScenarioApplicationError(ValueError):
    """An event that cannot be applied to the cluster it meets at runtime."""


# --------------------------------------------------------------------------- #
# Events
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ScenarioEvent:
    """One timed cluster mutation.

    Attributes:
        start_round: First round (0-indexed) the event is active.
        until_round: First round the event is no longer active (half-open
            window, matching Python ranges); ``None`` means the event never
            ends within the run.
    """

    start_round: int = field(default=0, kw_only=True)
    until_round: int | None = field(default=None, kw_only=True)

    #: Spec-language family name (set per subclass).
    kind = "abstract"

    def __post_init__(self) -> None:
        if self.start_round < 0:
            raise ValueError("start_round must be non-negative")
        if self.until_round is not None and self.until_round <= self.start_round:
            raise ValueError(
                f"until_round ({self.until_round}) must be greater than "
                f"start_round ({self.start_round})"
            )

    def active_at(self, round_index: int) -> bool:
        """Whether the event's window covers ``round_index``."""
        if round_index < self.start_round:
            return False
        return self.until_round is None or round_index < self.until_round

    def apply(
        self, cluster: "ClusterSpec", round_index: int, rng: np.random.Generator
    ) -> "ClusterSpec":
        """The effective cluster after this event (must not mutate the input)."""
        raise NotImplementedError

    def spec(self) -> str:
        """Canonical spec-string form of this event, window suffix included."""
        args = ", ".join(self._spec_args())
        text = f"{self.kind}({args})" if args else self.kind
        if self.until_round is not None:
            return f"{text}@{self.start_round}..{self.until_round}"
        if self.start_round > 0:
            return f"{text}@{self.start_round}"
        return text

    def _spec_args(self) -> list[str]:
        raise NotImplementedError

    def _window_bound(self) -> int:
        """Last round (exclusive) this event can perturb; open windows count 1."""
        return self.until_round if self.until_round is not None else self.start_round + 1


def _scale_profiles(
    cluster: "ClusterSpec", ranks: Iterable[int], *, slowdown: float = 1.0, nic: float = 1.0
) -> "ClusterSpec":
    """Multiply the given ranks' slowdown / nic_scale factors (compositional).

    On a materialized cluster (explicit ``worker_profiles``) the per-rank
    tuple is rewritten, preserving the historical representation.  On every
    other representation -- implicit-nominal, class-based, overridden -- the
    perturbation lands in the sparse ``profile_overrides`` map, so an event
    touching k workers costs O(k log k) regardless of world size.  Both
    paths multiply the same floats in the same order, so a distributional
    cluster and its materialized twin stay bit-exactly equal.
    """
    from repro.simulator.cluster import WorkerProfile

    world_size = cluster.world_size

    def check(rank: int) -> None:
        if not 0 <= rank < world_size:
            raise ScenarioApplicationError(
                f"event targets worker {rank} but the effective cluster has "
                f"world size {world_size}"
            )

    if cluster.worker_profiles is not None:
        profiles = list(cluster.worker_profiles)
        for rank in ranks:
            check(rank)
            profile = profiles[rank]
            profiles[rank] = WorkerProfile(
                slowdown=profile.slowdown * slowdown,
                nic_scale=profile.nic_scale * nic,
            )
        return replace(cluster, worker_profiles=tuple(profiles))

    overrides = dict(cluster.profile_overrides or ())
    for rank in ranks:
        check(rank)
        profile = overrides.get(rank)
        if profile is None:
            profile = cluster.profile_of(rank)
        overrides[rank] = WorkerProfile(
            slowdown=profile.slowdown * slowdown,
            nic_scale=profile.nic_scale * nic,
        )
    return replace(cluster, profile_overrides=tuple(sorted(overrides.items())))


def _scale_rank_range(
    cluster: "ClusterSpec", start: int, stop: int, *, slowdown: float = 1.0, nic: float = 1.0
) -> "ClusterSpec":
    """Multiply a contiguous rank range's factors in O(#classes).

    Rack- and domain-wide events (flap, domain_fail) always target
    contiguous rank ranges (the layout is contiguous by construction), so
    instead of writing one override per member the range is spliced into
    the canonical profile segments: at most two segments split, everything
    else is reused.  Per-rank float arithmetic is identical to
    :func:`_scale_profiles`, keeping the materialized twin bit-exact.
    """
    from repro.simulator.cluster import WorkerClass, WorkerProfile

    if cluster.worker_profiles is not None:
        return _scale_profiles(cluster, range(start, stop), slowdown=slowdown, nic=nic)
    spliced: list[tuple[WorkerProfile, int]] = []
    position = 0
    for profile, count in cluster.profile_segments():
        seg_start, seg_end = position, position + count
        position = seg_end
        lo, hi = max(seg_start, start), min(seg_end, stop)
        if lo >= hi:
            spliced.append((profile, count))
            continue
        scaled = WorkerProfile(
            slowdown=profile.slowdown * slowdown,
            nic_scale=profile.nic_scale * nic,
        )
        if lo > seg_start:
            spliced.append((profile, lo - seg_start))
        spliced.append((scaled, hi - lo))
        if seg_end > hi:
            spliced.append((profile, seg_end - hi))
    return replace(
        cluster,
        worker_classes=tuple(WorkerClass(count, profile) for profile, count in spliced),
        profile_overrides=None,
        worker_profiles=None,
    )


@dataclass(frozen=True)
class SlowdownEvent(ScenarioEvent):
    """Worker ``worker`` computes (and runs kernels) ``factor`` times slower."""

    worker: int
    factor: float
    kind = "slowdown"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.worker < 0:
            raise ValueError("worker must be non-negative")
        if self.factor <= 0:
            raise ValueError("factor must be positive")

    def apply(self, cluster, round_index, rng):
        return _scale_profiles(cluster, [self.worker], slowdown=self.factor)

    def _spec_args(self) -> list[str]:
        return [f"w={self.worker}", f"x={self.factor:g}"]


@dataclass(frozen=True)
class NicDegradeEvent(ScenarioEvent):
    """Worker ``worker``'s NIC drops to ``1/factor`` of nominal bandwidth."""

    worker: int
    factor: float
    kind = "nic_degrade"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.worker < 0:
            raise ValueError("worker must be non-negative")
        if self.factor <= 0:
            raise ValueError("factor must be positive")

    def apply(self, cluster, round_index, rng):
        return _scale_profiles(cluster, [self.worker], nic=self.factor)

    def _spec_args(self) -> list[str]:
        return [f"w={self.worker}", f"x={self.factor:g}"]


@dataclass(frozen=True)
class LinkFlapEvent(ScenarioEvent):
    """Rack ``rack``'s uplink flaps down: every member NIC runs ``factor`` x slower."""

    rack: int
    factor: float = 8.0
    kind = "flap"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rack < 0:
            raise ValueError("rack must be non-negative")
        if self.factor <= 0:
            raise ValueError("factor must be positive")

    def apply(self, cluster, round_index, rng):
        if self.rack >= cluster.num_racks:
            raise ScenarioApplicationError(
                f"flap targets rack {self.rack} but the effective cluster has "
                f"{cluster.num_racks} rack(s)"
            )
        # Rack membership is a contiguous rank range by construction
        # (ranks fill nodes, nodes fill racks, in order) -- no per-rank scan.
        members_per_rack = cluster.workers_per_rack
        start = self.rack * members_per_rack
        return _scale_rank_range(cluster, start, start + members_per_rack, nic=self.factor)

    def _spec_args(self) -> list[str]:
        return [f"rack={self.rack}", f"x={self.factor:g}"]


@dataclass(frozen=True)
class DomainFailEvent(ScenarioEvent):
    """Failure domain ``domain`` degrades: every member NIC runs ``factor`` x slower.

    Targets the fabric's failure-domain metadata
    (:attr:`~repro.topology.fabric.FabricSpec.racks_per_domain`): a fat-tree
    pod losing its aggregation uplinks, a torus plane, a sub-DCell.  On a
    cluster without a fabric the whole cluster is the single domain 0.
    """

    domain: int
    factor: float = 8.0
    kind = "domain_fail"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.domain < 0:
            raise ValueError("domain must be non-negative")
        if self.factor <= 0:
            raise ValueError("factor must be positive")

    def apply(self, cluster, round_index, rng):
        fabric = cluster.fabric
        num_domains = fabric.num_domains if fabric is not None else 1
        if self.domain >= num_domains:
            raise ScenarioApplicationError(
                f"domain_fail targets domain {self.domain} but the effective "
                f"cluster has {num_domains} failure domain(s)"
            )
        racks_per_domain = fabric.racks_per_domain if fabric is not None else 1
        workers_per_domain = cluster.workers_per_rack * racks_per_domain
        start = self.domain * workers_per_domain
        return _scale_rank_range(cluster, start, start + workers_per_domain, nic=self.factor)

    def _spec_args(self) -> list[str]:
        return [f"d={self.domain}", f"x={self.factor:g}"]


@dataclass(frozen=True)
class SwitchMemoryPressureEvent(ScenarioEvent):
    """The fabric switches' aggregation pool shrinks to ``factor`` of its size.

    A no-op on clusters without a fabric (there is no switch to pressure);
    on fabric clusters the smaller pool forces in-network aggregation into
    more chunks, each paying the recirculation overhead.
    """

    factor: float = 0.25
    kind = "switch_mem"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 < self.factor <= 1:
            raise ValueError("factor must be in (0, 1]")

    def apply(self, cluster, round_index, rng):
        if cluster.fabric is None or self.factor == 1.0:
            return cluster
        switch = cluster.fabric.switch
        squeezed = replace(
            switch,
            aggregation_memory_bytes=max(
                1, int(switch.aggregation_memory_bytes * self.factor)
            ),
        )
        return replace(cluster, fabric=replace(cluster.fabric, switch=squeezed))

    def _spec_args(self) -> list[str]:
        return [f"x={self.factor:g}"]


@dataclass(frozen=True)
class ChurnEvent(ScenarioEvent):
    """Transient stragglers: each worker slows by ``factor`` w.p. ``p`` per round.

    The draw is deterministic given the scenario seed, the event's position
    in the scenario, and the round index -- identical scenarios replay
    identical churn regardless of execution order or executor.  At or below
    :data:`~repro.simulator.cluster.MATERIALIZATION_LIMIT` workers the draw
    is per-rank (bit-exact across representations); above it one binomial
    draw per canonical profile segment picks how many of that segment's
    workers churn, keeping fleet-scale rounds O(#classes).  Both regimes
    depend only on the canonical population, never on which representation
    spells it.
    """

    p: float
    factor: float = 4.0
    kind = "churn"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 <= self.p <= 1:
            raise ValueError("p must be in [0, 1]")
        if self.factor <= 0:
            raise ValueError("factor must be positive")

    def apply(self, cluster, round_index, rng):
        from repro.simulator.cluster import (
            MATERIALIZATION_LIMIT,
            WorkerClass,
            WorkerProfile,
        )

        if cluster.world_size <= MATERIALIZATION_LIMIT:
            hit = np.flatnonzero(rng.random(cluster.world_size) < self.p)
            if hit.size == 0:
                return cluster
            return _scale_profiles(cluster, hit.tolist(), slowdown=self.factor)
        segments: list[tuple[WorkerProfile, int]] = []
        any_hit = False
        for profile, count in cluster.profile_segments():
            hits = int(rng.binomial(count, self.p))
            if hits:
                any_hit = True
                scaled = replace(profile, slowdown=profile.slowdown * self.factor)
                segments.append((scaled, hits))
                if count > hits:
                    segments.append((profile, count - hits))
            else:
                segments.append((profile, count))
        if not any_hit:
            return cluster
        return replace(
            cluster,
            worker_classes=tuple(
                WorkerClass(count, profile) for profile, count in segments
            ),
            profile_overrides=None,
            worker_profiles=None,
        )

    def _spec_args(self) -> list[str]:
        return [f"p={self.p:g}", f"x={self.factor:g}"]


def _resize_nodes(cluster: "ClusterSpec", new_num_nodes: int) -> "ClusterSpec":
    """A copy of the cluster with ``new_num_nodes`` nodes (profiles adjusted).

    Members keep their profiles in rank order: the last workers leave first,
    joiners arrive nominal.  Materialized clusters truncate / extend the
    per-rank tuple (the historical behaviour); distributional clusters
    adjust class counts and drop out-of-range overrides in O(#classes).
    """
    from repro.simulator.cluster import NOMINAL_PROFILE, WorkerClass, WorkerProfile

    if new_num_nodes < 1:
        raise ScenarioApplicationError("membership events cannot empty the cluster")
    if cluster.fabric is not None and cluster.fabric.num_racks > 1:
        if new_num_nodes % cluster.fabric.num_racks != 0:
            raise ScenarioApplicationError(
                f"membership event leaves {new_num_nodes} nodes, which does not "
                f"divide into the fabric's {cluster.fabric.num_racks} racks; "
                "join/leave whole rack-multiples on multi-rack clusters"
            )
    new_world = new_num_nodes * cluster.gpus_per_node
    profiles = cluster.worker_profiles
    if profiles is not None:
        if new_world <= len(profiles):
            profiles = tuple(profiles[:new_world])
        else:
            profiles = profiles + (WorkerProfile(),) * (new_world - len(profiles))
        return replace(cluster, num_nodes=new_num_nodes, worker_profiles=profiles)
    if cluster.worker_classes is None and cluster.profile_overrides is None:
        return replace(cluster, num_nodes=new_num_nodes)
    segments: list[tuple[WorkerProfile, int]] = []
    remaining = new_world
    for profile, count in cluster.profile_segments():
        if remaining <= 0:
            break
        taken = min(count, remaining)
        segments.append((profile, taken))
        remaining -= taken
    if remaining > 0:
        segments.append((NOMINAL_PROFILE, remaining))
    if all(profile == NOMINAL_PROFILE for profile, _ in segments):
        return replace(
            cluster,
            num_nodes=new_num_nodes,
            worker_classes=None,
            profile_overrides=None,
        )
    return replace(
        cluster,
        num_nodes=new_num_nodes,
        worker_classes=tuple(WorkerClass(count, profile) for profile, count in segments),
        profile_overrides=None,
    )


@dataclass(frozen=True)
class JoinEvent(ScenarioEvent):
    """``nodes`` extra nominal nodes join for the duration of the window."""

    nodes: int = 1
    kind = "join"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")

    def apply(self, cluster, round_index, rng):
        return _resize_nodes(cluster, cluster.num_nodes + self.nodes)

    def _spec_args(self) -> list[str]:
        return [f"n={self.nodes}"]


@dataclass(frozen=True)
class LeaveEvent(ScenarioEvent):
    """The last ``nodes`` nodes leave for the duration of the window."""

    nodes: int = 1
    kind = "leave"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")

    def apply(self, cluster, round_index, rng):
        return _resize_nodes(cluster, cluster.num_nodes - self.nodes)

    def _spec_args(self) -> list[str]:
        return [f"n={self.nodes}"]


# --------------------------------------------------------------------------- #
# The scenario container
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Scenario:
    """A timed sequence of cluster mutations, applied in declaration order.

    Attributes:
        events: The events, applied left to right within each round so later
            events compose onto earlier ones (two slowdowns on one worker
            multiply).
        seed: Seed of the scenario's stochastic events (churn).  Part of the
            scenario's identity: two scenarios differing only in seed never
            share sweep memo entries.
        name: Optional display name (not part of equality / cache identity).
    """

    events: tuple[ScenarioEvent, ...] = ()
    seed: int = 0
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, ScenarioEvent):
                raise TypeError(f"not a ScenarioEvent: {event!r}")

    @classmethod
    def of(cls, *events: ScenarioEvent, seed: int = 0, name: str = "") -> "Scenario":
        """Build a scenario from events given positionally."""
        return cls(events=tuple(events), seed=seed, name=name)

    @property
    def is_static(self) -> bool:
        """Whether the scenario has no events (the provably bit-exact case)."""
        return not self.events

    @property
    def is_deterministic(self) -> bool:
        """Whether the scenario replays identically regardless of its seed."""
        return not any(isinstance(event, ChurnEvent) for event in self.events)

    def horizon(self) -> int:
        """First round index at which no (bounded) event is still pending.

        Open-ended events count from their start round only, so the horizon
        is always finite; it is the natural lower bound on ``num_rounds``
        for a run that wants to observe every event.
        """
        if not self.events:
            return 0
        return max(event._window_bound() for event in self.events)

    def default_num_rounds(self, recovery_margin: int = 5) -> int:
        """A run length that covers every event plus a recovery margin."""
        if self.is_static:
            return 1
        return self.horizon() + recovery_margin

    def cluster_at(
        self, base: "ClusterSpec", round_index: int, *, attempt: int = 0
    ) -> "ClusterSpec":
        """The effective cluster of round ``round_index`` (0-indexed).

        Rounds with no active events return ``base`` itself (identity, not a
        copy), so static stretches are indistinguishable -- bit-exactly --
        from the static simulator, and per-cluster pricing memoization hits.

        ``attempt`` is the recovery layer's re-issue counter: attempt 0 (the
        default) seeds stochastic events with the historical ``(seed,
        position, round_index)`` tuple, so every pre-recovery number is
        preserved bit-exactly; attempt ``k > 0`` extends the tuple with the
        attempt index, re-drawing transient faults (churn) while
        deterministic windows persist.
        """
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        cluster = base
        for position, event in enumerate(self.events):
            if event.active_at(round_index):
                seed_key = (
                    (self.seed, position, round_index)
                    if attempt == 0
                    else (self.seed, position, round_index, attempt)
                )
                rng = np.random.default_rng(seed_key)
                cluster = event.apply(cluster, round_index, rng)
        return cluster

    def clusters(self, base: "ClusterSpec", num_rounds: int) -> "list[ClusterSpec]":
        """The effective cluster of every round of a ``num_rounds`` run."""
        if num_rounds < 1:
            raise ValueError("num_rounds must be >= 1")
        return [self.cluster_at(base, index) for index in range(num_rounds)]

    def max_world_size(self, base: "ClusterSpec", num_rounds: int) -> int:
        """The largest world size any round of the run sees (join events)."""
        return max(cluster.world_size for cluster in self.clusters(base, num_rounds))

    def cache_key(self) -> "Scenario":
        """Hashable full identity for sweep memoization.

        The frozen dataclass is its own key: equality covers the events and
        the seed (``name`` is display-only and excluded), so two scenarios on
        the same cluster never share a memo entry unless they genuinely
        replay the same mutations.
        """
        return self

    def spec(self) -> str:
        """The canonical, round-trippable spec string of this scenario."""
        if not self.events:
            return STATIC_SPEC
        return " + ".join(event.spec() for event in self.events)

    def label(self) -> str:
        """Display label: the name when given, the canonical spec otherwise."""
        return self.name or self.spec()


#: Spec spelling of the empty scenario (``scenario("static")`` parses to it).
STATIC_SPEC = "static"


# --------------------------------------------------------------------------- #
# The spec-string language
# --------------------------------------------------------------------------- #

_REQUIRED = object()


@dataclass(frozen=True)
class _EventParam:
    """One spec-language parameter of an event family."""

    names: tuple[str, ...]  # first name is canonical
    kind: type
    attr: str
    default: object = _REQUIRED

    def coerce(self, value: object, family: str) -> object:
        if self.kind is int:
            if isinstance(value, int) and not isinstance(value, bool):
                return value
        elif self.kind is float:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
        raise ScenarioParamError(
            f"{family}: parameter {self.names[0]!r} expects {self.kind.__name__}, "
            f"got {value!r}"
        )


@dataclass(frozen=True)
class _EventFamily:
    """A scenario event family: class, aliases, and typed parameters."""

    name: str
    cls: type
    params: tuple[_EventParam, ...]
    aliases: tuple[str, ...] = ()

    def param_named(self, key: str) -> _EventParam:
        for param in self.params:
            if key in param.names:
                return param
        valid = ", ".join(p.names[0] for p in self.params) or "(none)"
        raise ScenarioParamError(
            f"{self.name}: unknown parameter {key!r}; valid parameters: {valid}"
        )

    def build(
        self,
        args: Sequence[tuple[str | None, object]],
        start_round: int,
        until_round: int | None,
    ) -> ScenarioEvent:
        bound: dict[_EventParam, object] = {}
        positional_cursor = 0
        for key, value in args:
            if key is None:
                if positional_cursor >= len(self.params):
                    raise ScenarioParamError(
                        f"{self.name}: too many positional arguments "
                        f"(takes {len(self.params)})"
                    )
                param = self.params[positional_cursor]
                positional_cursor += 1
            else:
                param = self.param_named(key)
            if param in bound:
                raise ScenarioParamError(
                    f"{self.name}: parameter {param.names[0]!r} given twice"
                )
            bound[param] = param.coerce(value, self.name)
        kwargs = {param.attr: value for param, value in bound.items()}
        for param in self.params:
            if param.default is _REQUIRED and param.attr not in kwargs:
                raise ScenarioParamError(
                    f"{self.name}: missing required parameter {param.names[0]!r}"
                )
        try:
            return self.cls(**kwargs, start_round=start_round, until_round=until_round)
        except ValueError as error:
            raise ScenarioParamError(f"{self.name}: {error}") from None


_EVENT_FAMILIES: dict[str, _EventFamily] = {}
_EVENT_NAMES: dict[str, _EventFamily] = {}  # aliases included


def _register_event(family: _EventFamily) -> None:
    _EVENT_FAMILIES[family.name] = family
    for alias in (family.name, *family.aliases):
        _EVENT_NAMES[alias] = family


_register_event(
    _EventFamily(
        "slowdown",
        SlowdownEvent,
        (
            _EventParam(("w", "worker"), int, "worker"),
            _EventParam(("x", "factor"), float, "factor"),
        ),
    )
)
_register_event(
    _EventFamily(
        "nic_degrade",
        NicDegradeEvent,
        (
            _EventParam(("w", "worker"), int, "worker"),
            _EventParam(("x", "factor"), float, "factor"),
        ),
        aliases=("nic",),
    )
)
_register_event(
    _EventFamily(
        "flap",
        LinkFlapEvent,
        (
            _EventParam(("rack",), int, "rack"),
            _EventParam(("x", "factor"), float, "factor", default=8.0),
        ),
        aliases=("link_flap",),
    )
)
_register_event(
    _EventFamily(
        "domain_fail",
        DomainFailEvent,
        (
            _EventParam(("d", "domain"), int, "domain"),
            _EventParam(("x", "factor"), float, "factor", default=8.0),
        ),
        aliases=("domain",),
    )
)
_register_event(
    _EventFamily(
        "switch_mem",
        SwitchMemoryPressureEvent,
        (_EventParam(("x", "factor"), float, "factor", default=0.25),),
        aliases=("switch_memory_pressure",),
    )
)
_register_event(
    _EventFamily(
        "churn",
        ChurnEvent,
        (
            _EventParam(("p",), float, "p"),
            _EventParam(("x", "factor"), float, "factor", default=4.0),
        ),
    )
)
_register_event(
    _EventFamily("join", JoinEvent, (_EventParam(("n", "nodes"), int, "nodes", default=1),))
)
_register_event(
    _EventFamily("leave", LeaveEvent, (_EventParam(("n", "nodes"), int, "nodes", default=1),))
)


def available_events() -> list[str]:
    """Canonical scenario event names, sorted."""
    return sorted(_EVENT_FAMILIES)


_TERM_RE = re.compile(
    r"""
    (?P<name>[a-z_][a-z0-9_]*)
    \s*
    (?:\( (?P<args>[^()]*) \))?
    \s*
    (?:@ \s* (?P<start>\d+) \s* (?:\.\.\s*(?P<until>\d+))? )?
    """,
    re.VERBOSE,
)

_NUMBER_RE = re.compile(r"^[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?$")


def _parse_literal(text: str, spec: str, position: int) -> object:
    token = text.strip()
    if _NUMBER_RE.match(token):
        try:
            return int(token)
        except ValueError:
            return float(token)
    raise ScenarioSyntaxError(spec, position, f"expected a number, got {token!r}")


def _parse_term(spec: str, position: int) -> tuple[ScenarioEvent, int]:
    match = _TERM_RE.match(spec, position)
    if match is None or not match.group("name"):
        raise ScenarioSyntaxError(spec, position, "expected an event name")
    name = match.group("name")
    family = _EVENT_NAMES.get(name)
    if family is None:
        raise UnknownEventError(name, sorted(_EVENT_NAMES))
    args: list[tuple[str | None, object]] = []
    raw_args = match.group("args")
    if raw_args is not None and raw_args.strip():
        args_offset = match.start("args")
        for fragment in raw_args.split(","):
            fragment_offset = args_offset + raw_args.index(fragment)
            if "=" in fragment:
                key, _, raw_value = fragment.partition("=")
                key = key.strip()
                if not key.isidentifier():
                    raise ScenarioSyntaxError(
                        spec, fragment_offset, f"bad parameter name {key!r}"
                    )
                args.append((key, _parse_literal(raw_value, spec, fragment_offset)))
            else:
                args.append((None, _parse_literal(fragment, spec, fragment_offset)))
    start = int(match.group("start")) if match.group("start") else 0
    until = int(match.group("until")) if match.group("until") else None
    if match.group("start") and not match.group("until"):
        until = None  # "@20" means "from round 20, forever"
    if until is not None and until <= start:
        raise ScenarioSyntaxError(
            spec,
            match.start("start"),
            f"empty round window @{start}..{until}: windows are half-open "
            f"[A, B), so B must be greater than A "
            f"(did you mean @{start}..{start + 1} for the single round {start}?)",
        )
    event = family.build(tuple(args), start, until)
    return event, match.end()


def parse_scenario(text: str, *, seed: int = 0, name: str = "") -> Scenario:
    """Parse a scenario spec string into a :class:`Scenario`.

    Grammar (whitespace-insensitive)::

        scenario := "static" | term ("+" term)*
        term     := EVENT [ "(" [ arg ("," arg)* ] ")" ] [ "@" START [".." UNTIL] ]
        arg      := NAME "=" NUMBER | NUMBER

    ``@A..B`` is the half-open round window ``[A, B)``; ``@A`` alone means
    "from round A until the end of the run"; no ``@`` means "always".

    Raises:
        ScenarioSyntaxError: Malformed spec text.
        UnknownEventError: Unknown event name (with suggestions).
        ScenarioParamError: Arguments not matching the event's parameters.
    """
    if not isinstance(text, str) or not text.strip():
        raise ScenarioSyntaxError(str(text), 0, "empty scenario spec")
    stripped = text.strip()
    if stripped == STATIC_SPEC:
        return Scenario(seed=seed, name=name)
    events: list[ScenarioEvent] = []
    position = 0
    while True:
        while position < len(text) and text[position].isspace():
            position += 1
        event, position = _parse_term(text, position)
        events.append(event)
        while position < len(text) and text[position].isspace():
            position += 1
        if position >= len(text):
            break
        if text[position] != "+":
            raise ScenarioSyntaxError(
                text, position, f"expected '+' between events, got {text[position]!r}"
            )
        position += 1
    return Scenario(events=tuple(events), seed=seed, name=name)


def scenario(
    value: "str | Scenario | ScenarioEvent | Sequence[ScenarioEvent]",
    *,
    seed: int = 0,
    name: str = "",
) -> Scenario:
    """Coerce a spec string, an event (or sequence), or a Scenario to a Scenario.

    The public constructor mirroring :func:`repro.compression.registry.
    make_scheme`: ``scenario("flap(rack=1)@20..25 + churn(p=0.05)")``.
    Passing an existing :class:`Scenario` returns it unchanged (the ``seed``
    and ``name`` arguments are ignored in that case).
    """
    if isinstance(value, Scenario):
        return value
    if isinstance(value, str):
        return parse_scenario(value, seed=seed, name=name)
    if isinstance(value, ScenarioEvent):
        return Scenario(events=(value,), seed=seed, name=name)
    return Scenario(events=tuple(value), seed=seed, name=name)


# --------------------------------------------------------------------------- #
# Programmatic event constructors
# --------------------------------------------------------------------------- #


def slowdown(
    worker: int, x: float = 2.0, *, at_round: int = 0, until: int | None = None
) -> SlowdownEvent:
    """Worker ``worker`` runs ``x`` times slower for rounds ``[at_round, until)``."""
    return SlowdownEvent(worker=worker, factor=x, start_round=at_round, until_round=until)


def nic_degrade(
    worker: int, x: float = 4.0, *, at_round: int = 0, until: int | None = None
) -> NicDegradeEvent:
    """Worker ``worker``'s NIC drops to ``1/x`` bandwidth for the window."""
    return NicDegradeEvent(worker=worker, factor=x, start_round=at_round, until_round=until)


def link_flap(
    rack: int, x: float = 8.0, *, at_round: int = 0, until: int | None = None
) -> LinkFlapEvent:
    """Rack ``rack``'s members lose NIC bandwidth (``x`` times slower) for the window."""
    return LinkFlapEvent(rack=rack, factor=x, start_round=at_round, until_round=until)


def domain_fail(
    domain: int, x: float = 8.0, *, at_round: int = 0, until: int | None = None
) -> DomainFailEvent:
    """Failure domain ``domain``'s members lose NIC bandwidth for the window."""
    return DomainFailEvent(domain=domain, factor=x, start_round=at_round, until_round=until)


def switch_memory_pressure(
    x: float = 0.25, *, at_round: int = 0, until: int | None = None
) -> SwitchMemoryPressureEvent:
    """The switches' aggregation pool shrinks to ``x`` of its size for the window."""
    return SwitchMemoryPressureEvent(factor=x, start_round=at_round, until_round=until)


def churn(
    p: float, x: float = 4.0, *, at_round: int = 0, until: int | None = None
) -> ChurnEvent:
    """Each worker independently slows by ``x`` with probability ``p`` per round."""
    return ChurnEvent(p=p, factor=x, start_round=at_round, until_round=until)


def join(
    nodes: int = 1, *, at_round: int = 0, until: int | None = None
) -> JoinEvent:
    """``nodes`` extra nominal nodes participate for rounds ``[at_round, until)``."""
    return JoinEvent(nodes=nodes, start_round=at_round, until_round=until)


def leave(
    nodes: int = 1, *, at_round: int = 0, until: int | None = None
) -> LeaveEvent:
    """The last ``nodes`` nodes drop out for rounds ``[at_round, until)``."""
    return LeaveEvent(nodes=nodes, start_round=at_round, until_round=until)


# --------------------------------------------------------------------------- #
# Running a scenario and summarising its tail behaviour
# --------------------------------------------------------------------------- #

#: Relative slack above the baseline round time before a round counts as
#: degraded (absorbs float noise in the pricing arithmetic).
DEGRADED_RELATIVE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class ScenarioMetrics:
    """Tail summary of one scenario run's per-round times.

    Attributes:
        num_rounds: Rounds simulated.
        total_seconds: Sum of all round times.
        mean_round_seconds: Average round time.
        p50_round_seconds / p95_round_seconds / p99_round_seconds: Round-time
            percentiles -- the tail behaviour static averages hide.
        max_round_seconds: The single worst round.
        baseline_round_seconds: Static round time of the unperturbed cluster.
        degraded_rounds: Rounds measurably slower than the baseline.
        excess_seconds: Total time above baseline accumulated over degraded
            rounds -- the cost attributable to the scenario's events.
        recovery_round: First round index (0-indexed) after the last degraded
            round, i.e. when round times return to the static baseline;
            ``None`` if the run never degrades or never recovers within it.
        recovery_seconds: Simulated time from the onset of the first degraded
            round until recovery (the total span the job runs perturbed).
        timed_out_rounds: Rounds aborted at the recovery policy's deadline
            (0 when no policy ran -- the PR 5 path never times out).
        retries: Total failed attempts re-issued by the retry rule.
        dropped_worker_rounds: Worker-rounds excused by the drop rule
            (summed over rounds: 3 rounds dropping 2 workers each = 6).
        stale_rounds: Aborted rounds whose update re-applied the last good
            aggregate instead of being skipped.
    """

    num_rounds: int
    total_seconds: float
    mean_round_seconds: float
    p50_round_seconds: float
    p95_round_seconds: float
    p99_round_seconds: float
    max_round_seconds: float
    baseline_round_seconds: float
    degraded_rounds: int
    excess_seconds: float
    recovery_round: int | None
    recovery_seconds: float
    timed_out_rounds: int = 0
    retries: int = 0
    dropped_worker_rounds: int = 0
    stale_rounds: int = 0

    @property
    def tail_amplification(self) -> float:
        """p99 round time relative to the static baseline (1.0 = no tail)."""
        if self.baseline_round_seconds <= 0:
            return float("nan")
        return self.p99_round_seconds / self.baseline_round_seconds


def scenario_metrics(
    round_seconds: Sequence[float], baseline_round_seconds: float
) -> ScenarioMetrics:
    """Summarise per-round times against the unperturbed baseline."""
    if not round_seconds:
        raise ValueError("need at least one round time")
    times = np.asarray(round_seconds, dtype=float)
    threshold = baseline_round_seconds * (1.0 + DEGRADED_RELATIVE_TOLERANCE)
    degraded = times > threshold
    degraded_indices = np.flatnonzero(degraded)
    if degraded_indices.size:
        first = int(degraded_indices[0])
        last = int(degraded_indices[-1])
        recovery_round = last + 1 if last + 1 < len(times) else None
        recovery_seconds = float(times[first : last + 1].sum())
    else:
        recovery_round = None
        recovery_seconds = 0.0
    return ScenarioMetrics(
        num_rounds=len(times),
        total_seconds=float(times.sum()),
        mean_round_seconds=float(times.mean()),
        p50_round_seconds=float(np.percentile(times, 50)),
        p95_round_seconds=float(np.percentile(times, 95)),
        p99_round_seconds=float(np.percentile(times, 99)),
        max_round_seconds=float(times.max()),
        baseline_round_seconds=float(baseline_round_seconds),
        degraded_rounds=int(degraded.sum()),
        excess_seconds=float((times[degraded] - baseline_round_seconds).sum()),
        recovery_round=recovery_round,
        recovery_seconds=recovery_seconds,
    )


@dataclass(frozen=True)
class ScenarioRun:
    """Per-round times of one scenario run plus their tail summary.

    Attributes:
        scenario: The scenario that was run.
        round_seconds: Time of every simulated round, in round order.
        metrics: Tail summary (:class:`ScenarioMetrics`).
        distinct_clusters: How many distinct effective cluster configurations
            the run priced (1 for a static scenario; churn typically many).
    """

    scenario: Scenario
    round_seconds: tuple[float, ...]
    metrics: ScenarioMetrics
    distinct_clusters: int


def run_scenario(
    base: "ClusterSpec",
    scenario: Scenario,
    num_rounds: int,
    price_round: "Callable[[ClusterSpec], float]",
) -> ScenarioRun:
    """Drive a per-cluster pricing function over a scenario's rounds.

    ``price_round`` maps an effective :class:`ClusterSpec` to that round's
    simulated duration; it is called once per *distinct* effective cluster
    (results are memoized by :meth:`ClusterSpec.cache_key`), so a 1000-round
    scenario with one slowdown window prices exactly two configurations.

    The baseline for the tail metrics is ``price_round(base)`` -- the static
    round time of the unperturbed cluster.
    """
    if num_rounds < 1:
        raise ValueError("num_rounds must be >= 1")
    cache: dict[object, float] = {}

    def priced(cluster: "ClusterSpec") -> float:
        key = cluster.cache_key()
        if key not in cache:
            cache[key] = price_round(cluster)
        return cache[key]

    baseline = priced(base)
    round_seconds = tuple(
        priced(scenario.cluster_at(base, index)) for index in range(num_rounds)
    )
    return ScenarioRun(
        scenario=scenario,
        round_seconds=round_seconds,
        metrics=scenario_metrics(round_seconds, baseline),
        distinct_clusters=len(cache),
    )


def _event_field_names() -> set[str]:  # pragma: no cover - debugging aid
    return {f.name for cls in _EVENT_FAMILIES.values() for f in fields(cls.cls)}
