"""Cluster description: how many nodes, GPUs per node, and interconnects.

The paper's testbed ("two nodes, each equipped with two NVIDIA A100 GPUs and a
Mellanox ConnectX-6 100 Gbps NIC") is available as :func:`paper_testbed`.
Larger synthetic clusters can be built for the scalability ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulator.gpu import GpuModel
from repro.simulator.nic import NVLINK, NicModel


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous GPU cluster.

    Attributes:
        num_nodes: Number of physical machines.
        gpus_per_node: GPUs (workers) per machine.
        gpu: Performance model shared by all GPUs.
        inter_node_nic: NIC connecting different machines.
        intra_node_nic: Interconnect between GPUs in the same machine
            (NVLink-like by default).
    """

    num_nodes: int = 2
    gpus_per_node: int = 2
    gpu: GpuModel = field(default_factory=GpuModel)
    inter_node_nic: NicModel = field(default_factory=NicModel)
    intra_node_nic: NicModel = NVLINK

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")

    @property
    def world_size(self) -> int:
        """Total number of workers (GPUs) in the cluster."""
        return self.num_nodes * self.gpus_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting worker ``rank``."""
        self._check_rank(rank)
        return rank // self.gpus_per_node

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """Whether two workers share a machine (and thus the fast interconnect)."""
        return self.node_of(rank_a) == self.node_of(rank_b)

    def link_between(self, rank_a: int, rank_b: int) -> NicModel:
        """The interconnect model used for traffic between two workers."""
        if rank_a == rank_b:
            raise ValueError("no link between a worker and itself")
        return self.intra_node_nic if self.same_node(rank_a, rank_b) else self.inter_node_nic

    def bottleneck_bandwidth_gbps(self) -> float:
        """Bandwidth of the slowest link class present in the cluster."""
        if self.num_nodes > 1:
            return self.inter_node_nic.bandwidth_gbps
        return self.intra_node_nic.bandwidth_gbps

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range for world size {self.world_size}")


def paper_testbed() -> ClusterSpec:
    """The testbed used throughout the paper's case study.

    Two nodes, two A100s each, 100 Gbps inter-node NICs, NVLink intra-node.
    """
    return ClusterSpec(num_nodes=2, gpus_per_node=2)


def scale_out_cluster(num_nodes: int, gpus_per_node: int = 8) -> ClusterSpec:
    """A larger cluster preset for scalability ablations."""
    return ClusterSpec(num_nodes=num_nodes, gpus_per_node=gpus_per_node)
