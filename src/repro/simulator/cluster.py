"""Cluster description: how many nodes, GPUs per node, and interconnects.

The paper's testbed ("two nodes, each equipped with two NVIDIA A100 GPUs and a
Mellanox ConnectX-6 100 Gbps NIC") is available as :func:`paper_testbed`.
Larger synthetic clusters can be built for the scalability ablations, and
optional per-worker :class:`WorkerProfile` entries describe heterogeneous
clusters -- stragglers (slower compute) and mixed NIC tiers -- which the
bucketed pipeline simulator (:mod:`repro.simulator.pipeline`) and the
collective cost model price explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.simulator.gpu import GpuModel
from repro.simulator.nic import NVLINK, NicModel
from repro.topology.fabric import FabricSpec, two_tier_fabric


@dataclass(frozen=True)
class WorkerProfile:
    """Per-worker deviation from the cluster's nominal hardware.

    Attributes:
        slowdown: Multiplier on the worker's compute and kernel times
            (1.0 = nominal, 1.5 = a straggler running 50 % slower).
        nic_scale: Multiplier on the transfer time of collectives this worker
            participates in (1.0 = the cluster's nominal NIC tier, 4.0 = a
            quarter-bandwidth NIC).  Ring-style collectives run at the pace
            of the slowest member, so the worst ``nic_scale`` gates the wire.
    """

    slowdown: float = 1.0
    nic_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.slowdown <= 0:
            raise ValueError("slowdown must be positive")
        if self.nic_scale <= 0:
            raise ValueError("nic_scale must be positive")


@dataclass(frozen=True)
class ClusterSpec:
    """A GPU cluster, homogeneous by default.

    Attributes:
        num_nodes: Number of physical machines.
        gpus_per_node: GPUs (workers) per machine.
        gpu: Performance model shared by all GPUs.
        inter_node_nic: NIC connecting different machines.
        intra_node_nic: Interconnect between GPUs in the same machine
            (NVLink-like by default).
        worker_profiles: Optional per-rank heterogeneity; when given, must
            hold exactly ``world_size`` entries.  ``None`` means every worker
            runs the nominal hardware.
        fabric: Optional multi-rack fabric the nodes hang off
            (:class:`~repro.topology.fabric.FabricSpec`).  ``None`` -- or a
            flat fabric (one rack, oversubscription 1.0) -- prices exactly
            like the historical single-switch cluster.  The fabric is part of
            the cluster's identity: :meth:`cache_key` distinguishes
            same-shape clusters with different fabrics.
    """

    num_nodes: int = 2
    gpus_per_node: int = 2
    gpu: GpuModel = field(default_factory=GpuModel)
    inter_node_nic: NicModel = field(default_factory=NicModel)
    intra_node_nic: NicModel = NVLINK
    worker_profiles: tuple[WorkerProfile, ...] | None = None
    fabric: FabricSpec | None = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")
        if self.fabric is not None:
            if self.fabric.num_racks > self.num_nodes:
                raise ValueError(
                    f"fabric has {self.fabric.num_racks} racks but the cluster "
                    f"only has {self.num_nodes} nodes"
                )
            if self.num_nodes % self.fabric.num_racks != 0:
                raise ValueError(
                    f"num_nodes ({self.num_nodes}) must divide evenly into "
                    f"{self.fabric.num_racks} racks"
                )
        if self.worker_profiles is not None:
            profiles = tuple(self.worker_profiles)
            if len(profiles) != self.world_size:
                raise ValueError(
                    f"worker_profiles must have {self.world_size} entries, "
                    f"got {len(profiles)}"
                )
            object.__setattr__(self, "worker_profiles", profiles)

    @property
    def world_size(self) -> int:
        """Total number of workers (GPUs) in the cluster."""
        return self.num_nodes * self.gpus_per_node

    @property
    def is_heterogeneous(self) -> bool:
        """Whether any worker deviates from the nominal hardware."""
        if self.worker_profiles is None:
            return False
        return any(
            profile.slowdown != 1.0 or profile.nic_scale != 1.0
            for profile in self.worker_profiles
        )

    def profile_of(self, rank: int) -> WorkerProfile:
        """The heterogeneity profile of worker ``rank`` (nominal if unset)."""
        self._check_rank(rank)
        if self.worker_profiles is None:
            return WorkerProfile()
        return self.worker_profiles[rank]

    def slowdown_of(self, rank: int) -> float:
        """Compute/kernel slowdown factor of worker ``rank``."""
        return self.profile_of(rank).slowdown

    def max_slowdown(self) -> float:
        """Slowdown of the cluster's slowest worker (the straggler)."""
        if self.worker_profiles is None:
            return 1.0
        return max(profile.slowdown for profile in self.worker_profiles)

    def worst_nic_scale(self) -> float:
        """Transfer-time multiplier of the slowest NIC tier in the cluster."""
        if self.worker_profiles is None:
            return 1.0
        return max(profile.nic_scale for profile in self.worker_profiles)

    def with_straggler(self, rank: int, slowdown: float) -> "ClusterSpec":
        """A copy of this cluster where worker ``rank`` runs ``slowdown`` x slower."""
        self._check_rank(rank)
        profiles = list(
            self.worker_profiles
            if self.worker_profiles is not None
            else (WorkerProfile(),) * self.world_size
        )
        profiles[rank] = replace(profiles[rank], slowdown=slowdown)
        return replace(self, worker_profiles=tuple(profiles))

    def with_nic_tier(self, rank: int, nic_scale: float) -> "ClusterSpec":
        """A copy of this cluster where worker ``rank`` has a ``nic_scale`` x slower NIC."""
        self._check_rank(rank)
        profiles = list(
            self.worker_profiles
            if self.worker_profiles is not None
            else (WorkerProfile(),) * self.world_size
        )
        profiles[rank] = replace(profiles[rank], nic_scale=nic_scale)
        return replace(self, worker_profiles=tuple(profiles))

    def with_fabric(self, fabric: FabricSpec | None) -> "ClusterSpec":
        """A copy of this cluster behind the given multi-rack fabric."""
        return replace(self, fabric=fabric)

    def cache_key(self) -> "ClusterSpec":
        """A hashable key capturing the cluster's *full* identity.

        Two clusters with the same shape but different GPUs, NICs, worker
        profiles, or fabrics produce different keys -- unlike the display
        label (``"2x2"``), which only encodes shape and rack count.  Used by
        sweep memoization.  The frozen dataclass is its own identity
        (hashable, equality over every field, present and future -- the
        ``fabric`` field included), so the spec itself is the key.
        """
        return self

    # ------------------------------------------------------------------ #
    # Fabric / rack structure
    # ------------------------------------------------------------------ #
    @property
    def num_racks(self) -> int:
        """Number of racks the nodes are partitioned into (1 without a fabric)."""
        return self.fabric.num_racks if self.fabric is not None else 1

    @property
    def nodes_per_rack(self) -> int:
        """Nodes behind each ToR switch."""
        return self.num_nodes // self.num_racks

    @property
    def workers_per_rack(self) -> int:
        """Workers (GPUs) behind each ToR switch."""
        return self.nodes_per_rack * self.gpus_per_node

    @property
    def has_active_fabric(self) -> bool:
        """Whether a non-flat fabric constrains this cluster's collectives."""
        return self.fabric is not None and not self.fabric.is_flat

    def rack_of(self, rank: int) -> int:
        """Rack index hosting worker ``rank`` (0 without a fabric)."""
        return self.node_of(rank) // self.nodes_per_rack

    def same_rack(self, rank_a: int, rank_b: int) -> bool:
        """Whether two workers sit behind the same ToR switch."""
        return self.rack_of(rank_a) == self.rack_of(rank_b)

    def rack_assignment(self) -> list[int]:
        """The rack index of every rank, in rank order."""
        return [self.rack_of(rank) for rank in range(self.world_size)]

    def node_of(self, rank: int) -> int:
        """Node index hosting worker ``rank``."""
        self._check_rank(rank)
        return rank // self.gpus_per_node

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """Whether two workers share a machine (and thus the fast interconnect)."""
        return self.node_of(rank_a) == self.node_of(rank_b)

    def link_between(self, rank_a: int, rank_b: int) -> NicModel:
        """The interconnect model used for traffic between two workers."""
        if rank_a == rank_b:
            raise ValueError("no link between a worker and itself")
        return self.intra_node_nic if self.same_node(rank_a, rank_b) else self.inter_node_nic

    def bottleneck_bandwidth_gbps(self) -> float:
        """Bandwidth of the slowest link class present in the cluster."""
        if self.num_nodes > 1:
            return self.inter_node_nic.bandwidth_gbps / self.worst_nic_scale()
        return self.intra_node_nic.bandwidth_gbps / self.worst_nic_scale()

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range for world size {self.world_size}")


def paper_testbed() -> ClusterSpec:
    """The testbed used throughout the paper's case study.

    Two nodes, two A100s each, 100 Gbps inter-node NICs, NVLink intra-node.
    """
    return ClusterSpec(num_nodes=2, gpus_per_node=2)


def scale_out_cluster(num_nodes: int, gpus_per_node: int = 8) -> ClusterSpec:
    """A larger cluster preset for scalability ablations."""
    return ClusterSpec(num_nodes=num_nodes, gpus_per_node=gpus_per_node)


def multirack_cluster(
    num_racks: int,
    nodes_per_rack: int = 2,
    gpus_per_node: int = 2,
    *,
    oversubscription: float = 2.0,
) -> ClusterSpec:
    """A multi-rack preset: ``num_racks`` racks behind an oversubscribed spine.

    Each rack holds ``nodes_per_rack`` paper-testbed nodes; the fabric is a
    conventional two-tier ToR + spine design
    (:func:`repro.topology.fabric.two_tier_fabric`).
    """
    return ClusterSpec(
        num_nodes=num_racks * nodes_per_rack,
        gpus_per_node=gpus_per_node,
        fabric=two_tier_fabric(num_racks, oversubscription),
    )
