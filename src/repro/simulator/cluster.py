"""Cluster description: how many nodes, GPUs per node, and interconnects.

The paper's testbed ("two nodes, each equipped with two NVIDIA A100 GPUs and a
Mellanox ConnectX-6 100 Gbps NIC") is available as :func:`paper_testbed`.
Larger synthetic clusters can be built for the scalability ablations, and
heterogeneous clusters -- stragglers (slower compute) and mixed NIC tiers --
are described in one of two equivalent forms:

* **materialized**: one :class:`WorkerProfile` per rank
  (``worker_profiles``), the historical representation, practical up to a few
  thousand workers;
* **distributional**: a handful of :class:`WorkerClass` entries with counts
  (``worker_classes``) plus a sparse per-rank ``profile_overrides`` map for
  named stragglers.  Every profile query (:meth:`ClusterSpec.max_slowdown`,
  :meth:`ClusterSpec.worst_nic_scale`, :meth:`ClusterSpec.slowdown_segments`)
  is O(#classes), so fleet-scale clusters -- 100k to 1M workers on a
  generated fabric -- price without any O(world_size) loop.

Both forms of the same population share one identity: equality, hashing, and
:meth:`ClusterSpec.cache_key` go through the canonical run-length-encoded
profile segments (:meth:`ClusterSpec.profile_segments`), so a distributional
cluster and its expanded per-rank twin memoize as a single sweep point.
Conversion is explicit: :meth:`ClusterSpec.materialize` expands (refusing
above :data:`MATERIALIZATION_LIMIT` workers) and
:meth:`ClusterSpec.as_distributional` compresses.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.simulator.gpu import GpuModel
from repro.simulator.nic import NVLINK, NicModel
from repro.topology.fabric import (
    FabricSpec,
    dcell_fabric,
    dcell_size,
    fat_tree_fabric,
    torus_fabric,
    two_tier_fabric,
)

#: Largest world size :meth:`ClusterSpec.materialize` will expand into
#: per-rank profiles.  Fleet-scale clusters stay distributional; only the
#: functional small-n paths (kernel backends, per-rank bit-exactness tests)
#: ever need the expanded form.
MATERIALIZATION_LIMIT = 4096


@dataclass(frozen=True)
class WorkerProfile:
    """Per-worker deviation from the cluster's nominal hardware.

    Attributes:
        slowdown: Multiplier on the worker's compute and kernel times
            (1.0 = nominal, 1.5 = a straggler running 50 % slower).
        nic_scale: Multiplier on the transfer time of collectives this worker
            participates in (1.0 = the cluster's nominal NIC tier, 4.0 = a
            quarter-bandwidth NIC).  Ring-style collectives run at the pace
            of the slowest member, so the worst ``nic_scale`` gates the wire.
    """

    slowdown: float = 1.0
    nic_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.slowdown <= 0:
            raise ValueError("slowdown must be positive")
        if self.nic_scale <= 0:
            raise ValueError("nic_scale must be positive")

    @property
    def is_nominal(self) -> bool:
        """Whether this profile matches the cluster's nominal hardware."""
        return self.slowdown == 1.0 and self.nic_scale == 1.0


#: The nominal profile every unlisted worker runs.
NOMINAL_PROFILE = WorkerProfile()


@dataclass(frozen=True)
class WorkerClass:
    """A contiguous block of ``count`` workers sharing one profile.

    The distributional building block: a fleet is a few of these (nominal
    hosts, a slow NIC tier, a batch of stragglers) instead of a million
    per-rank tuples.  Classes cover ranks contiguously in declaration order;
    use ``profile_overrides`` on :class:`ClusterSpec` for named single ranks.

    Attributes:
        count: Number of consecutive ranks in this class (>= 1).
        profile: The hardware deviation every member runs.
        name: Optional display name (not part of equality / cache identity).
    """

    count: int
    profile: WorkerProfile = field(default_factory=WorkerProfile)
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.count, int) or isinstance(self.count, bool):
            raise TypeError("count must be an int")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if not isinstance(self.profile, WorkerProfile):
            raise TypeError(f"profile must be a WorkerProfile, got {self.profile!r}")


@dataclass(frozen=True, eq=False)
class ClusterSpec:
    """A GPU cluster, homogeneous by default.

    Attributes:
        num_nodes: Number of physical machines.
        gpus_per_node: GPUs (workers) per machine.
        gpu: Performance model shared by all GPUs.
        inter_node_nic: NIC connecting different machines.
        intra_node_nic: Interconnect between GPUs in the same machine
            (NVLink-like by default).
        worker_profiles: Optional materialized per-rank heterogeneity; when
            given, must hold exactly ``world_size`` entries.  Mutually
            exclusive with ``worker_classes``.
        worker_classes: Optional distributional heterogeneity: contiguous
            :class:`WorkerClass` blocks whose counts sum to ``world_size``.
            The fleet-scale representation -- profile queries stay
            O(#classes) no matter the world size.
        profile_overrides: Optional sparse per-rank profiles layered on top
            of whichever base representation is in use (``{rank: profile}``
            or ``((rank, profile), ...)``); normalised to a rank-sorted
            tuple.  This is how single-rank perturbations
            (:meth:`with_straggler`, :meth:`with_nic_tier`) stay O(k) for k
            chained mutations instead of O(k * world_size).
        fabric: Optional multi-rack fabric the nodes hang off
            (:class:`~repro.topology.fabric.FabricSpec`).  ``None`` -- or a
            flat fabric (one rack, oversubscription 1.0) -- prices exactly
            like the historical single-switch cluster.  The fabric is part of
            the cluster's identity: :meth:`cache_key` distinguishes
            same-shape clusters with different fabrics.

    Equality and hashing are *canonical*: two clusters are equal when their
    shapes, hardware models, fabrics, and effective per-rank profiles match,
    regardless of which representation (materialized, distributional, or
    implicit-nominal) describes the population.
    """

    num_nodes: int = 2
    gpus_per_node: int = 2
    gpu: GpuModel = field(default_factory=GpuModel)
    inter_node_nic: NicModel = field(default_factory=NicModel)
    intra_node_nic: NicModel = NVLINK
    worker_profiles: tuple[WorkerProfile, ...] | None = None
    worker_classes: tuple[WorkerClass, ...] | None = None
    profile_overrides: tuple[tuple[int, WorkerProfile], ...] | None = None
    fabric: FabricSpec | None = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")
        if self.fabric is not None:
            if self.fabric.num_racks > self.num_nodes:
                raise ValueError(
                    f"fabric has {self.fabric.num_racks} racks but the cluster "
                    f"only has {self.num_nodes} nodes"
                )
            if self.num_nodes % self.fabric.num_racks != 0:
                raise ValueError(
                    f"num_nodes ({self.num_nodes}) must divide evenly into "
                    f"{self.fabric.num_racks} racks"
                )
        if self.worker_profiles is not None and self.worker_classes is not None:
            raise ValueError(
                "worker_profiles and worker_classes are mutually exclusive; "
                "pick one representation (profile_overrides layers on either)"
            )
        if self.worker_profiles is not None:
            profiles = tuple(self.worker_profiles)
            if len(profiles) != self.world_size:
                raise ValueError(
                    f"worker_profiles must have {self.world_size} entries, "
                    f"got {len(profiles)}"
                )
            object.__setattr__(self, "worker_profiles", profiles)
        if self.worker_classes is not None:
            classes = tuple(self.worker_classes)
            for entry in classes:
                if not isinstance(entry, WorkerClass):
                    raise TypeError(f"not a WorkerClass: {entry!r}")
            covered = sum(entry.count for entry in classes)
            if covered != self.world_size:
                raise ValueError(
                    f"worker_classes must cover exactly {self.world_size} "
                    f"workers, cover {covered}"
                )
            object.__setattr__(self, "worker_classes", classes)
        if self.profile_overrides is not None:
            object.__setattr__(
                self, "profile_overrides", self._normalize_overrides(self.profile_overrides)
            )

    def _normalize_overrides(
        self, overrides: "Mapping[int, WorkerProfile] | tuple"
    ) -> tuple[tuple[int, WorkerProfile], ...] | None:
        items = (
            list(overrides.items())
            if isinstance(overrides, Mapping)
            else [tuple(entry) for entry in overrides]
        )
        normalized: list[tuple[int, WorkerProfile]] = []
        seen: set[int] = set()
        for rank, profile in sorted(items, key=lambda entry: entry[0]):
            if not isinstance(rank, int) or isinstance(rank, bool):
                raise TypeError(f"override rank must be an int, got {rank!r}")
            self._check_rank(rank)
            if rank in seen:
                raise ValueError(f"duplicate profile override for rank {rank}")
            seen.add(rank)
            if not isinstance(profile, WorkerProfile):
                raise TypeError(f"override must map to a WorkerProfile, got {profile!r}")
            normalized.append((rank, profile))
        return tuple(normalized) or None

    def _cached(self, attr: str, build):
        # Lazy derived state on a frozen dataclass (canonical segments, the
        # override map, the hash).  Safe under concurrent access: builders
        # are pure, so racing threads compute identical values.
        cached = self.__dict__.get(attr)
        if cached is None:
            cached = build()
            object.__setattr__(self, attr, cached)
        return cached

    @property
    def world_size(self) -> int:
        """Total number of workers (GPUs) in the cluster."""
        return self.num_nodes * self.gpus_per_node

    # ------------------------------------------------------------------ #
    # Canonical profile identity
    # ------------------------------------------------------------------ #
    def profile_segments(self) -> tuple[tuple[WorkerProfile, int], ...]:
        """Canonical run-length encoding of the per-rank profiles.

        ``((profile, count), ...)`` in rank order, adjacent equal profiles
        merged, overrides folded in by splitting the segment they land in.
        This is the representation-independent form both the equality /
        cache identity and every O(#classes) query are built on: a
        distributional cluster and its materialized twin produce identical
        segments.  O(#classes + #overrides) for distributional clusters,
        O(world_size) for materialized ones (computed once and cached).
        """
        return self._cached("_segments_cache", self._build_segments)

    def _build_segments(self) -> tuple[tuple[WorkerProfile, int], ...]:
        if self.worker_profiles is not None:
            base: list[tuple[WorkerProfile, int]] = []
            for profile in self.worker_profiles:
                if base and base[-1][0] == profile:
                    base[-1] = (profile, base[-1][1] + 1)
                else:
                    base.append((profile, 1))
        elif self.worker_classes is not None:
            base = [(entry.profile, entry.count) for entry in self.worker_classes]
        else:
            base = [(NOMINAL_PROFILE, self.world_size)]
        overrides = self.profile_overrides or ()
        merged: list[tuple[WorkerProfile, int]] = []

        def push(profile: WorkerProfile, count: int) -> None:
            if count <= 0:
                return
            if merged and merged[-1][0] == profile:
                merged[-1] = (profile, merged[-1][1] + count)
            else:
                merged.append((profile, count))

        position = 0
        cursor = 0  # index into the rank-sorted overrides
        for profile, count in base:
            start, end = position, position + count
            position = end
            at = start
            while cursor < len(overrides) and overrides[cursor][0] < end:
                rank, override = overrides[cursor]
                cursor += 1
                push(profile, rank - at)
                push(override, 1)
                at = rank + 1
            push(profile, end - at)
        return tuple(merged)

    def _canonical_profiles(self) -> tuple[tuple[WorkerProfile, int], ...] | None:
        """The profile part of the identity: ``None`` for all-nominal clusters."""
        segments = self.profile_segments()
        if len(segments) == 1 and segments[0][0] == NOMINAL_PROFILE:
            return None
        return segments

    def cache_key(self) -> tuple:
        """A hashable key capturing the cluster's *full* identity.

        Two clusters with the same shape but different GPUs, NICs, worker
        profiles, or fabrics produce different keys -- unlike the display
        label (``"2x2"``), which only encodes shape and rack count.  The
        profile component is the canonical segment encoding, so a
        distributional cluster and its materialized per-rank twin share one
        key (and therefore one sweep memo entry, one service digest, one
        scenario pricing slot).  Used by sweep memoization.
        """
        return (
            self.num_nodes,
            self.gpus_per_node,
            self.gpu,
            self.inter_node_nic,
            self.intra_node_nic,
            self._canonical_profiles(),
            self.fabric,
        )

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if not isinstance(other, ClusterSpec):
            return NotImplemented
        return self.cache_key() == other.cache_key()

    def __hash__(self) -> int:
        return self._cached("_hash_cache", lambda: hash(self.cache_key()))

    # ------------------------------------------------------------------ #
    # Profile queries (O(#classes) on distributional clusters)
    # ------------------------------------------------------------------ #
    @property
    def is_heterogeneous(self) -> bool:
        """Whether any worker deviates from the nominal hardware."""
        return self._canonical_profiles() is not None

    def _override_map(self) -> dict[int, WorkerProfile]:
        return self._cached(
            "_override_map_cache", lambda: dict(self.profile_overrides or ())
        )

    def _class_starts(self) -> list[int]:
        def build() -> list[int]:
            starts = []
            position = 0
            for entry in self.worker_classes or ():
                starts.append(position)
                position += entry.count
            return starts

        return self._cached("_class_starts_cache", build)

    def profile_of(self, rank: int) -> WorkerProfile:
        """The heterogeneity profile of worker ``rank`` (nominal if unset)."""
        self._check_rank(rank)
        override = self._override_map().get(rank)
        if override is not None:
            return override
        if self.worker_profiles is not None:
            return self.worker_profiles[rank]
        if self.worker_classes is not None:
            index = bisect_right(self._class_starts(), rank) - 1
            return self.worker_classes[index].profile
        return NOMINAL_PROFILE

    def slowdown_of(self, rank: int) -> float:
        """Compute/kernel slowdown factor of worker ``rank``."""
        return self.profile_of(rank).slowdown

    def max_slowdown(self) -> float:
        """Slowdown of the cluster's slowest worker (the straggler)."""
        segments = self._canonical_profiles()
        if segments is None:
            return 1.0
        return max(profile.slowdown for profile, _ in segments)

    def worst_nic_scale(self) -> float:
        """Transfer-time multiplier of the slowest NIC tier in the cluster."""
        segments = self._canonical_profiles()
        if segments is None:
            return 1.0
        return max(profile.nic_scale for profile, _ in segments)

    def slowdown_segments(self) -> tuple[tuple[float, int], ...]:
        """Run-length encoded per-rank slowdowns, ``((slowdown, count), ...)``.

        The pipeline simulator's class summary: one entry per maximal run of
        equal slowdowns in rank order.  Cached, so repeated rounds of a
        simulation reuse it without re-walking the population.
        """

        def build() -> tuple[tuple[float, int], ...]:
            runs: list[tuple[float, int]] = []
            for profile, count in self.profile_segments():
                if runs and runs[-1][0] == profile.slowdown:
                    runs[-1] = (profile.slowdown, runs[-1][1] + count)
                else:
                    runs.append((profile.slowdown, count))
            return tuple(runs)

        return self._cached("_slowdown_segments_cache", build)

    # ------------------------------------------------------------------ #
    # Representation conversion
    # ------------------------------------------------------------------ #
    def materialize(self) -> "ClusterSpec":
        """The equal per-rank twin: one explicit :class:`WorkerProfile` per rank.

        Only the functional small-n paths (kernel backends, per-rank
        bit-exactness tests) need this form; it refuses to expand beyond
        :data:`MATERIALIZATION_LIMIT` workers so fleet-scale clusters cannot
        silently fall back onto O(world_size) representations.
        """
        if self.worker_profiles is not None and self.profile_overrides is None:
            return self
        if self.world_size > MATERIALIZATION_LIMIT:
            raise ValueError(
                f"refusing to materialize {self.world_size} worker profiles "
                f"(limit {MATERIALIZATION_LIMIT}); keep fleet-scale clusters "
                "distributional"
            )
        expanded: list[WorkerProfile] = []
        for profile, count in self.profile_segments():
            expanded.extend([profile] * count)
        return replace(
            self,
            worker_profiles=tuple(expanded),
            worker_classes=None,
            profile_overrides=None,
        )

    def as_distributional(self) -> "ClusterSpec":
        """The equal class-based twin: RLE :class:`WorkerClass` blocks.

        An all-nominal population collapses to the implicit representation
        (no classes at all); either way the result compares and hashes equal
        to ``self``.
        """
        segments = self._canonical_profiles()
        classes = (
            None
            if segments is None
            else tuple(WorkerClass(count, profile) for profile, count in segments)
        )
        return replace(
            self, worker_profiles=None, worker_classes=classes, profile_overrides=None
        )

    # ------------------------------------------------------------------ #
    # Single-rank perturbations (sparse: O(k) for k chained mutations)
    # ------------------------------------------------------------------ #
    def with_straggler(self, rank: int, slowdown: float) -> "ClusterSpec":
        """A copy of this cluster where worker ``rank`` runs ``slowdown`` x slower."""
        self._check_rank(rank)
        return self._with_override(rank, replace(self.profile_of(rank), slowdown=slowdown))

    def with_nic_tier(self, rank: int, nic_scale: float) -> "ClusterSpec":
        """A copy of this cluster where worker ``rank`` has a ``nic_scale`` x slower NIC."""
        self._check_rank(rank)
        return self._with_override(rank, replace(self.profile_of(rank), nic_scale=nic_scale))

    def _with_override(self, rank: int, profile: WorkerProfile) -> "ClusterSpec":
        overrides = self._override_map().copy()
        overrides[rank] = profile
        return replace(self, profile_overrides=tuple(sorted(overrides.items())))

    def with_fabric(self, fabric: FabricSpec | None) -> "ClusterSpec":
        """A copy of this cluster behind the given multi-rack fabric."""
        return replace(self, fabric=fabric)

    # ------------------------------------------------------------------ #
    # Fabric / rack structure
    # ------------------------------------------------------------------ #
    @property
    def num_racks(self) -> int:
        """Number of racks the nodes are partitioned into (1 without a fabric)."""
        return self.fabric.num_racks if self.fabric is not None else 1

    @property
    def nodes_per_rack(self) -> int:
        """Nodes behind each ToR switch."""
        return self.num_nodes // self.num_racks

    @property
    def workers_per_rack(self) -> int:
        """Workers (GPUs) behind each ToR switch."""
        return self.nodes_per_rack * self.gpus_per_node

    @property
    def has_active_fabric(self) -> bool:
        """Whether a non-flat fabric constrains this cluster's collectives."""
        return self.fabric is not None and not self.fabric.is_flat

    def rack_of(self, rank: int) -> int:
        """Rack index hosting worker ``rank`` (0 without a fabric)."""
        return self.node_of(rank) // self.nodes_per_rack

    def same_rack(self, rank_a: int, rank_b: int) -> bool:
        """Whether two workers sit behind the same ToR switch."""
        return self.rack_of(rank_a) == self.rack_of(rank_b)

    def rack_assignment(self) -> list[int]:
        """The rack index of every rank, in rank order."""
        return [self.rack_of(rank) for rank in range(self.world_size)]

    def node_of(self, rank: int) -> int:
        """Node index hosting worker ``rank``."""
        self._check_rank(rank)
        return rank // self.gpus_per_node

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """Whether two workers share a machine (and thus the fast interconnect)."""
        return self.node_of(rank_a) == self.node_of(rank_b)

    def link_between(self, rank_a: int, rank_b: int) -> NicModel:
        """The interconnect model used for traffic between two workers."""
        if rank_a == rank_b:
            raise ValueError("no link between a worker and itself")
        return self.intra_node_nic if self.same_node(rank_a, rank_b) else self.inter_node_nic

    def bottleneck_bandwidth_gbps(self) -> float:
        """Bandwidth of the slowest link class present in the cluster."""
        if self.num_nodes > 1:
            return self.inter_node_nic.bandwidth_gbps / self.worst_nic_scale()
        return self.intra_node_nic.bandwidth_gbps / self.worst_nic_scale()

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range for world size {self.world_size}")


def paper_testbed() -> ClusterSpec:
    """The testbed used throughout the paper's case study.

    Two nodes, two A100s each, 100 Gbps inter-node NICs, NVLink intra-node.
    """
    return ClusterSpec(num_nodes=2, gpus_per_node=2)


def scale_out_cluster(num_nodes: int, gpus_per_node: int = 8) -> ClusterSpec:
    """A larger cluster preset for scalability ablations."""
    return ClusterSpec(num_nodes=num_nodes, gpus_per_node=gpus_per_node)


def multirack_cluster(
    num_racks: int,
    nodes_per_rack: int = 2,
    gpus_per_node: int = 2,
    *,
    oversubscription: float = 2.0,
) -> ClusterSpec:
    """A multi-rack preset: ``num_racks`` racks behind an oversubscribed spine.

    Each rack holds ``nodes_per_rack`` paper-testbed nodes; the fabric is a
    conventional two-tier ToR + spine design
    (:func:`repro.topology.fabric.two_tier_fabric`).
    """
    return ClusterSpec(
        num_nodes=num_racks * nodes_per_rack,
        gpus_per_node=gpus_per_node,
        fabric=two_tier_fabric(num_racks, oversubscription),
    )


# --------------------------------------------------------------------------- #
# Fleet-scale presets on generated fabrics
# --------------------------------------------------------------------------- #
def fat_tree_cluster(
    k: int,
    gpus_per_node: int = 2,
    *,
    oversubscription: float = 1.0,
    worker_classes: tuple[WorkerClass, ...] | None = None,
) -> ClusterSpec:
    """A k-ary fat-tree fleet: ``k^3 / 4`` hosts in ``k^2 / 2`` racks.

    Each edge switch fronts ``k / 2`` hosts; one pod (``k / 2`` racks) is a
    failure domain the scenario engine's ``domain_fail`` event can target.
    ``fat_tree_cluster(128, gpus_per_node=2)`` is a 1,048,576-worker fleet
    whose pricing stays O(#classes).
    """
    return ClusterSpec(
        num_nodes=(k**3) // 4,
        gpus_per_node=gpus_per_node,
        fabric=fat_tree_fabric(k, oversubscription=oversubscription),
        worker_classes=worker_classes,
    )


def torus_cluster(
    dims: tuple[int, ...] = (8, 8, 8),
    nodes_per_rack: int = 2,
    gpus_per_node: int = 2,
    *,
    worker_classes: tuple[WorkerClass, ...] | None = None,
) -> ClusterSpec:
    """A torus fleet: one rack of ``nodes_per_rack`` hosts per torus vertex.

    The failure domain is a plane perpendicular to the first dimension (all
    vertices sharing the first coordinate).
    """
    return ClusterSpec(
        num_nodes=math.prod(dims) * nodes_per_rack,
        gpus_per_node=gpus_per_node,
        fabric=torus_fabric(dims),
        worker_classes=worker_classes,
    )


def dcell_cluster(
    n: int = 4,
    level: int = 2,
    gpus_per_node: int = 2,
    *,
    worker_classes: tuple[WorkerClass, ...] | None = None,
) -> ClusterSpec:
    """A DCell fleet: the recursive server-centric topology at ``level``.

    ``n`` servers per DCell_0 mini-switch; level ``l`` holds
    ``t_l = t_{l-1} * (t_{l-1} + 1)`` servers, so modest parameters reach
    datacenter scale (``dcell_cluster(32, 2)`` has 1,116,192 hosts).  One
    DCell_{level-1} is a failure domain.
    """
    return ClusterSpec(
        num_nodes=dcell_size(n, level),
        gpus_per_node=gpus_per_node,
        fabric=dcell_fabric(n, level),
        worker_classes=worker_classes,
    )
