"""Network interface model.

The paper's testbed uses Mellanox ConnectX-6 100 Gbps NICs; intra-node GPU
pairs communicate over NVLink.  The model captures the two properties that
matter for the communication argument:

* a per-message latency term (the "alpha" in the alpha-beta model), and
* a bandwidth term, in Gbit/s, which limits how fast gradient bytes move.

The paper also cites SRNIC-style findings that RDMA NICs degrade when they
maintain many connections (relevant to all-gather and parameter-server
aggregation).  :meth:`NicModel.effective_bandwidth_gbps` models this as a mild
per-connection degradation beyond a connection budget.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NicModel:
    """A simple latency/bandwidth/connection-scalability NIC model.

    Attributes:
        bandwidth_gbps: Line rate in Gbit/s.
        latency_s: One-way message latency in seconds (per hop / per message).
        protocol_efficiency: Fraction of the line rate a collective actually
            sustains (framing, congestion control, and NCCL protocol overhead;
            ~0.6 matches the gap between the paper's FP16 and FP32 baseline
            round times on 100 GbE).
        connection_budget: Number of simultaneous reliable connections the NIC
            can sustain at full rate.
        per_connection_penalty: Fractional bandwidth loss per connection above
            the budget (cumulative, floored at ``min_efficiency``).
        min_efficiency: Lower bound on the connection-scaling efficiency factor.
    """

    name: str = "ConnectX-6"
    bandwidth_gbps: float = 100.0
    latency_s: float = 5e-6
    protocol_efficiency: float = 0.6
    connection_budget: int = 64
    per_connection_penalty: float = 0.002
    min_efficiency: float = 0.4

    def effective_bandwidth_gbps(self, num_connections: int = 1) -> float:
        """Bandwidth available when maintaining ``num_connections`` connections."""
        if num_connections < 1:
            raise ValueError("num_connections must be >= 1")
        excess = max(0, num_connections - self.connection_budget)
        efficiency = max(self.min_efficiency, 1.0 - excess * self.per_connection_penalty)
        return self.bandwidth_gbps * self.protocol_efficiency * efficiency

    def transfer_time(self, nbits: float, *, num_connections: int = 1) -> float:
        """Time to push ``nbits`` through the NIC over ``num_connections`` connections."""
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if nbits == 0:
            return 0.0
        bandwidth_bps = self.effective_bandwidth_gbps(num_connections) * 1e9
        return self.latency_s + nbits / bandwidth_bps


#: NVLink-like intra-node interconnect: much higher bandwidth, lower latency.
NVLINK = NicModel(
    name="NVLink3",
    bandwidth_gbps=600.0 * 8,
    latency_s=1e-6,
    protocol_efficiency=0.8,
    connection_budget=256,
    per_connection_penalty=0.0005,
)
