"""Bucketed, dependency-driven pipeline simulator for one training round.

The paper's headline claims are about *where round time goes*: compression
kernels and collective communication overlapping with the backward pass.  A
single "overlap fraction" scalar cannot express per-bucket pipelining,
stragglers, or heterogeneous clusters, so this module models the round the way
a real DDP engine executes it -- as a dependency graph of per-bucket events
scheduled on per-worker compute resources and a shared network resource:

* the backward pass produces gradient *buckets* progressively (``ready``
  times are inputs to the schedule);
* each worker compresses a bucket on its compression stream as soon as the
  bucket is ready and the stream is free;
* the collective for a bucket starts once **every** worker has finished
  compressing it and the network is free (collectives launch in bucket order
  and serialize on the wire, as NCCL channels do);
* decompression runs on a per-worker decompression stream once the collective
  completes, and the optimizer step follows the last bucket.

Heterogeneity comes from :class:`~repro.simulator.cluster.ClusterSpec` worker
profiles: a straggler's compute and kernel times are scaled by its slowdown
factor (which delays every collective that waits on it), while mixed NIC
tiers scale the priced collective times through the cost model.

The legacy ``overlap_fraction`` scalar is kept as a deprecated shim:
:func:`legacy_overlap_schedule` maps it onto a two-stage pipeline whose
makespan reproduces the old closed-form total exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster is runtime-optional)
    from repro.simulator.cluster import ClusterSpec


@dataclass(frozen=True)
class BucketCost:
    """The priced work of one gradient bucket.

    Attributes:
        ready_seconds: When the backward pass makes this bucket's gradient
            available, on a nominal (slowdown 1.0) worker clock.
        compress_seconds: Compression kernel time for the bucket on one
            nominal worker.
        comm_seconds: Priced collective completion time for the bucket's
            payload (already includes any NIC-tier scaling from the cost
            model).
        decompress_seconds: Decompression kernel time after the collective.
        label: Optional display name of the bucket.
    """

    ready_seconds: float
    compress_seconds: float
    comm_seconds: float
    decompress_seconds: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if min(
            self.ready_seconds,
            self.compress_seconds,
            self.comm_seconds,
            self.decompress_seconds,
        ) < 0:
            raise ValueError("bucket times must be non-negative")


@dataclass(frozen=True)
class BucketTrace:
    """Scheduled times of one bucket (worker maxima for the kernel stages)."""

    index: int
    ready_seconds: float
    compress_end_seconds: float
    comm_start_seconds: float
    comm_end_seconds: float
    decompress_end_seconds: float


@dataclass(frozen=True)
class PipelineResult:
    """The outcome of scheduling one round's buckets.

    Attributes:
        makespan_seconds: Completion time of the whole round (the last event
            on any worker or on the wire).
        serialized_seconds: What the round would cost with no pipelining at
            all (every phase back-to-back on the slowest worker) -- the
            baseline the overlap is measured against.
        traces: Per-bucket scheduled times, in bucket order.
        worker_finish_seconds: Per-worker completion times (optimizer step
            included), in rank order.  On fleet-scale clusters (more than
            :data:`WORKER_EXPANSION_LIMIT` workers) the tuple holds one
            entry per slowdown *segment* instead of per rank -- workers
            sharing a slowdown finish at identical times, so no information
            is lost and the result stays O(#classes).
        aborted: Whether a ``deadline_seconds`` abort fired: the round ran
            past the deadline and was cut off there (the recovery layer's
            ``timeout`` rule).  The makespan is then exactly the deadline;
            traces keep the un-aborted schedule for diagnosis.
    """

    makespan_seconds: float
    serialized_seconds: float
    traces: tuple[BucketTrace, ...]
    worker_finish_seconds: tuple[float, ...]
    aborted: bool = False

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of the serialized round time hidden by pipelining."""
        if self.serialized_seconds <= 0:
            return 0.0
        return 1.0 - self.makespan_seconds / self.serialized_seconds

    def rounds_per_second(self) -> float:
        """Throughput implied by the makespan."""
        if self.makespan_seconds <= 0:
            raise ValueError("cannot compute throughput of an empty schedule")
        return 1.0 / self.makespan_seconds


#: Above this many workers ``worker_finish_seconds`` is reported per
#: slowdown segment rather than per rank (matches
#: :data:`repro.simulator.cluster.MATERIALIZATION_LIMIT`).
WORKER_EXPANSION_LIMIT = 4096


def _worker_slowdowns(cluster: "ClusterSpec | None") -> tuple[tuple[float, int], ...]:
    """Run-length encoded ``(slowdown, count)`` segments of the population.

    O(#classes) on distributional clusters: the homogeneous short-circuit
    (``is_heterogeneous``) and the cached class summary
    (:meth:`~repro.simulator.cluster.ClusterSpec.slowdown_segments`) mean
    repeated simulated rounds never re-walk a million ranks.
    """
    if cluster is None:
        return ((1.0, 1),)
    if not cluster.is_heterogeneous:
        return ((1.0, cluster.world_size),)
    return cluster.slowdown_segments()


def simulate_schedule(
    buckets: Sequence[BucketCost],
    cluster: "ClusterSpec | None" = None,
    *,
    optimizer_seconds: float = 0.0,
    deadline_seconds: float | None = None,
) -> PipelineResult:
    """Schedule one round's buckets and return the exact makespan.

    A worker's compress/decompress trajectory depends only on its own
    slowdown (plus the shared wire clock), and every aggregate the result
    reports is a maximum over workers -- so the scheduler runs one *lane*
    per distinct slowdown value instead of one loop iteration per rank.
    The makespan is bit-exact with the per-rank loop at any world size,
    which is what lets million-worker fleets price in O(#classes).

    Args:
        buckets: Per-bucket costs, in backward-ready order.  Collectives are
            launched (and serialize on the network) in this order.
        cluster: Cluster whose worker profiles scale per-worker compute and
            kernel times; ``None`` simulates a single nominal worker.
        optimizer_seconds: Optimizer step time appended after the last
            bucket's decompression on every worker.
        deadline_seconds: Optional round deadline (the recovery layer's
            ``timeout`` rule).  A round whose makespan would exceed it is
            *aborted*: the result's makespan is clamped to the deadline and
            ``aborted`` is set.  ``None`` (the default) never aborts, and
            leaves every existing result bit-exact.

    Returns:
        A :class:`PipelineResult` with the makespan, the serialized
        reference time, and per-bucket traces.
    """
    if not buckets:
        raise ValueError("schedule needs at least one bucket")
    if optimizer_seconds < 0:
        raise ValueError("optimizer_seconds must be non-negative")
    if deadline_seconds is not None and deadline_seconds <= 0:
        raise ValueError("deadline_seconds must be positive")

    segments = _worker_slowdowns(cluster)
    # One lane of stream clocks per distinct slowdown: compression kernels
    # and decompression kernels run on separate in-order streams, as a real
    # engine enqueues them; workers sharing a slowdown share the trajectory.
    lanes: dict[float, list[float]] = {}
    for slowdown, _ in segments:
        lanes.setdefault(slowdown, [0.0, 0.0])

    traces: list[BucketTrace] = []
    comm_free = 0.0
    for index, bucket in enumerate(buckets):
        compress_end = 0.0
        for slowdown, lane in lanes.items():
            start = max(bucket.ready_seconds * slowdown, lane[0])
            lane[0] = start + bucket.compress_seconds * slowdown
            compress_end = max(compress_end, lane[0])
        comm_start = max(compress_end, comm_free)
        comm_free = comm_start + bucket.comm_seconds
        decompress_end = 0.0
        for slowdown, lane in lanes.items():
            start = max(comm_free, lane[1])
            lane[1] = start + bucket.decompress_seconds * slowdown
            decompress_end = max(decompress_end, lane[1])
        traces.append(
            BucketTrace(
                index=index,
                ready_seconds=bucket.ready_seconds,
                compress_end_seconds=compress_end,
                comm_start_seconds=comm_start,
                comm_end_seconds=comm_free,
                decompress_end_seconds=decompress_end,
            )
        )

    backward_end = buckets[-1].ready_seconds
    finish_by_lane = {}
    for slowdown, lane in lanes.items():
        kernels_done = max(backward_end * slowdown, lane[0], lane[1], comm_free)
        finish_by_lane[slowdown] = kernels_done + optimizer_seconds * slowdown

    total_workers = sum(count for _, count in segments)
    if total_workers <= WORKER_EXPANSION_LIMIT:
        worker_finish = tuple(
            finish_by_lane[slowdown]
            for slowdown, count in segments
            for _ in range(count)
        )
    else:
        worker_finish = tuple(finish_by_lane[slowdown] for slowdown, _ in segments)

    serial_kernel_seconds = sum(
        b.compress_seconds + b.decompress_seconds for b in buckets
    )
    serial_comm_seconds = sum(b.comm_seconds for b in buckets)
    serialized = max(
        (backward_end + serial_kernel_seconds + optimizer_seconds) * slowdown
        + serial_comm_seconds
        for slowdown in lanes
    )
    makespan = max(finish_by_lane.values())
    aborted = deadline_seconds is not None and makespan > deadline_seconds
    if aborted:
        makespan = deadline_seconds
        worker_finish = tuple(min(finish, deadline_seconds) for finish in worker_finish)
    return PipelineResult(
        makespan_seconds=makespan,
        serialized_seconds=serialized,
        traces=tuple(traces),
        worker_finish_seconds=worker_finish,
        aborted=aborted,
    )


# ---------------------------------------------------------------------- #
# Schedule constructors
# ---------------------------------------------------------------------- #
def serialized_schedule(
    compute_seconds: float,
    compression_seconds: float,
    communication_seconds: float,
    decompression_seconds: float = 0.0,
) -> list[BucketCost]:
    """One bucket, ready only when the whole backward pass has finished.

    The makespan of this schedule is the plain sum of the phases -- the
    repo's historical (fully exposed) round model.
    """
    return [
        BucketCost(
            ready_seconds=compute_seconds,
            compress_seconds=compression_seconds,
            comm_seconds=communication_seconds,
            decompress_seconds=decompression_seconds,
            label="all",
        )
    ]


def legacy_overlap_schedule(
    compute_seconds: float,
    compression_seconds: float,
    communication_seconds: float,
    decompression_seconds: float = 0.0,
    *,
    overlap_fraction: float,
) -> list[BucketCost]:
    """The deprecated ``overlap_fraction`` scalar as a two-stage pipeline.

    Stage one puts ``overlap_fraction`` of the communication on the wire
    while the backward pass runs; stage two carries the exposed remainder
    after compute and compression finish.  On a homogeneous cluster the
    makespan equals the legacy closed form exactly::

        other + communication - min(overlap_fraction * communication, compute)
    """
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ValueError("overlap_fraction must be in [0, 1]")
    hidden = communication_seconds * overlap_fraction
    # Compression is encoded as ready time (not compress_seconds) so the
    # serialized reference does not count it twice: the legacy model runs
    # compression strictly before any communication starts.
    return [
        BucketCost(
            ready_seconds=compression_seconds,
            compress_seconds=0.0,
            comm_seconds=hidden,
            label="overlapped",
        ),
        BucketCost(
            ready_seconds=compression_seconds + compute_seconds,
            compress_seconds=0.0,
            comm_seconds=communication_seconds - hidden,
            decompress_seconds=decompression_seconds,
            label="exposed",
        ),
    ]


def legacy_overlap_makespan(
    compute_seconds: float,
    compression_seconds: float,
    communication_seconds: float,
    decompression_seconds: float = 0.0,
    optimizer_seconds: float = 0.0,
    *,
    overlap_fraction: float,
) -> float:
    """Makespan of the :func:`legacy_overlap_schedule` shim on one worker."""
    schedule = legacy_overlap_schedule(
        compute_seconds,
        compression_seconds,
        communication_seconds,
        decompression_seconds,
        overlap_fraction=overlap_fraction,
    )
    return simulate_schedule(schedule, optimizer_seconds=optimizer_seconds).makespan_seconds


def split_coordinates(num_coordinates: int, num_buckets: int) -> list[int]:
    """Split ``num_coordinates`` into near-equal non-empty bucket sizes."""
    if num_coordinates <= 0:
        raise ValueError("num_coordinates must be positive")
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    num_buckets = min(num_buckets, num_coordinates)
    base, extra = divmod(num_coordinates, num_buckets)
    return [base + (1 if index < extra else 0) for index in range(num_buckets)]


def bucketed_schedule(
    compute_seconds: float,
    bucket_costs: Sequence[tuple[float, float] | tuple[float, float, float]],
) -> list[BucketCost]:
    """A pipelined schedule from per-bucket ``(compress, comm[, decompress])`` costs.

    Bucket ``i`` of ``B`` becomes ready at ``compute * (i + 1) / B``: the
    backward pass emits gradients progressively and the last bucket appears
    when compute ends, which is what lets early buckets' collectives hide
    behind the remaining compute.
    """
    if not bucket_costs:
        raise ValueError("need at least one bucket cost")
    if compute_seconds < 0:
        raise ValueError("compute_seconds must be non-negative")
    num_buckets = len(bucket_costs)
    schedule = []
    for index, cost in enumerate(bucket_costs):
        compress, comm = cost[0], cost[1]
        decompress = cost[2] if len(cost) > 2 else 0.0
        schedule.append(
            BucketCost(
                ready_seconds=compute_seconds * (index + 1) / num_buckets,
                compress_seconds=compress,
                comm_seconds=comm,
                decompress_seconds=decompress,
                label=f"bucket{index}",
            )
        )
    return schedule
