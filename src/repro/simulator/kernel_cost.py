"""Cost models for the compression kernels the paper profiles.

The paper attributes degraded end-to-end performance to a handful of
computationally heavy components:

* **Top-k selection and coordinate rearrangement** (section 3.1.1) -- poor
  memory locality makes this a major bottleneck, ~10 % of round time.
* **Randomized Hadamard Transform** (section 3.2.1) -- O(d log d) work and,
  for large d, spill out of shared memory into global memory; 4.4 % / 13.2 %
  throughput penalty for BERT / VGG19.
* **Matrix orthogonalization in PowerSGD** (section 3.3) -- 39.7 % / 47.4 %
  of round time at rank 64.

Each method returns a simulated execution time on one GPU for a gradient of
``d`` coordinates.  The constants are chosen so the *relative* overheads match
the paper's profiling on the paper-testbed preset; see EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.simulator.gpu import GpuModel, Precision


@dataclass(frozen=True)
class KernelCostModel:
    """Per-kernel timing model layered on top of a :class:`GpuModel`.

    Attributes:
        gpu: The underlying GPU arithmetic/memory model.
        topk_selection_factor: Extra work factor for top-k selection relative
            to a single scan (radix-select style algorithms make several
            passes over the candidate array).
        rearrangement_bytes_per_value: Bytes touched per gathered coordinate
            when packing selected values and indices (value + index read/write).
        orthogonalization_flops_factor: Constant in the 2*d*r^2 Gram-Schmidt
            FLOP count (accounts for the two matmuls in a PowerSGD step plus
            the orthogonalization itself).
    """

    gpu: GpuModel = field(default_factory=GpuModel)
    topk_selection_factor: float = 3.0
    rearrangement_bytes_per_value: float = 24.0
    orthogonalization_flops_factor: float = 6.0

    # ------------------------------------------------------------------ #
    # Sparsification kernels
    # ------------------------------------------------------------------ #
    def topk_select_time(self, d: int, k: int) -> float:
        """Time to find the top-``k`` magnitude coordinates out of ``d``.

        Modelled as a multi-pass scan over the candidate array with a random
        access penalty (the paper cites Shanbhag et al. on GPU top-k being
        memory-bound with poor locality).
        """
        _validate_sizes(d=d, k=k)
        if k == 0 or d == 0:
            return 0.0
        scan = self.gpu.memory_time(
            d * 4.0 * self.topk_selection_factor, sequential=False
        )
        compute = self.gpu.compute_time(d * self.topk_selection_factor * 2.0)
        return max(scan, compute)

    def rearrangement_time(self, k: int) -> float:
        """Time to gather ``k`` selected values and their indices into a packed buffer."""
        _validate_sizes(k=k)
        if k == 0:
            return 0.0
        return self.gpu.memory_time(
            k * self.rearrangement_bytes_per_value, sequential=False
        )

    def scatter_time(self, k: int) -> float:
        """Time to scatter ``k`` (value, index) pairs back into a dense gradient."""
        return self.rearrangement_time(k)

    def chunk_norm_time(self, d: int, chunk_size: int) -> float:
        """Time to compute per-chunk squared L2 norms (TopKC stage 1).

        This is a sequential reduction over the whole gradient -- the
        GPU-friendly access pattern is the point of the TopKC design.
        """
        _validate_sizes(d=d)
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if d == 0:
            return 0.0
        return self.gpu.elementwise_time(
            d, flops_per_element=2.0, bytes_per_element=4.0, sequential=True
        )

    def chunk_gather_time(self, num_selected_coordinates: int) -> float:
        """Time to copy the selected chunks into the all-reduce input buffer.

        Chunks are contiguous, so this is a sequential copy (read + write).
        """
        _validate_sizes(k=num_selected_coordinates)
        if num_selected_coordinates == 0:
            return 0.0
        return self.gpu.memory_time(num_selected_coordinates * 8.0, sequential=True)

    # ------------------------------------------------------------------ #
    # Quantization kernels
    # ------------------------------------------------------------------ #
    def hadamard_time(self, d: int, depth: int | None = None) -> float:
        """Time of a randomized Hadamard transform over ``d`` coordinates.

        A full RHT on a vector padded to 2**l performs l butterfly passes
        (O(d log d) work).  ``depth`` limits the number of passes (partial
        rotation).  A kernel can keep a 2**s-sized tile in shared memory and
        perform s passes per trip through global memory, so the global-memory
        traffic grows with ``ceil(depth / s)`` kernel groups -- this is
        exactly the spill effect the partial-rotation optimisation removes by
        picking ``depth <= s``.
        """
        _validate_sizes(d=d)
        if d == 0:
            return 0.0
        padded = 1 << max(1, math.ceil(math.log2(max(2, d))))
        full_depth = int(math.log2(padded))
        if depth is None:
            depth = full_depth
        if depth < 0:
            raise ValueError("depth must be non-negative")
        depth = min(depth, full_depth)
        if depth == 0:
            return 0.0

        shared_values = max(2, self.gpu.memory.max_shared_elements(4))
        shared_depth = max(1, int(math.log2(shared_values)))
        kernel_groups = -(-depth // shared_depth)
        bytes_moved = padded * 4.0 * 2.0 * kernel_groups
        compute = self.gpu.compute_time(padded * depth * 2.0, Precision.FP32)
        memory = self.gpu.memory_time(bytes_moved, sequential=True)
        return max(compute, memory)

    def quantize_time(self, d: int, bits: int) -> float:
        """Time of stochastic quantization of ``d`` values into ``bits``-bit integers."""
        _validate_sizes(d=d)
        if bits <= 0:
            raise ValueError("bits must be positive")
        if d == 0:
            return 0.0
        return self.gpu.elementwise_time(
            d, flops_per_element=4.0, bytes_per_element=4.0 + bits / 8.0
        )

    def dequantize_time(self, d: int, bits: int) -> float:
        """Time to expand ``d`` quantized values back to floating point."""
        return self.quantize_time(d, bits)

    # ------------------------------------------------------------------ #
    # Low-rank decomposition kernels
    # ------------------------------------------------------------------ #
    #: Small GPU kernels launched per Gram-Schmidt column (projection,
    #: subtraction, norm, division) -- the orthogonalization's cost is
    #: dominated by this serial chain of tiny launches, not by FLOPs, which is
    #: what makes it "overwhelmingly expensive" in the paper's profiling.
    orthogonalization_launches_per_column: int = 3

    def powersgd_time(self, d: int, rank: int, *, rows: int | None = None) -> float:
        """Time of one PowerSGD compression step on a ``d``-coordinate layer.

        PowerSGD reshapes the layer into an (m x n) matrix with m*n = d and
        computes P = M Q (two dense matmuls per step), orthogonalizes P
        (Gram-Schmidt), then computes Q = M^T P.  The matmuls run at tensor-
        core rate; the orthogonalization is a serial chain of per-column
        kernels with poor GPU utilisation (see
        :meth:`orthogonalization_time`), which the paper's profiling shows
        dominating the round at r = 64.
        """
        _validate_sizes(d=d)
        if rank <= 0:
            raise ValueError("rank must be positive")
        if d == 0:
            return 0.0
        m = rows if rows is not None else max(1, int(math.sqrt(d)))
        if m <= 0:
            raise ValueError("rows must be positive")
        n = max(1, d // m)
        matmul_flops = 2.0 * 2.0 * m * n * rank
        matmul = 2 * self.gpu.kernel_launch_overhead_s + self.gpu.compute_time(
            matmul_flops, Precision.FP16
        )
        return matmul + self.orthogonalization_time(d, rank, rows=rows)

    def orthogonalization_time(self, d: int, rank: int, *, rows: int | None = None) -> float:
        """Time of the Gram-Schmidt orthogonalization of an (m x rank) factor.

        Modelled as ``rank`` sequential column steps, each a handful of small
        kernel launches plus the strided traffic of projecting against the
        previous columns.  Launch overhead dominates for realistic shapes,
        matching the paper's observation that orthogonalization consumes
        ~40-47 % of the round time at rank 64 despite negligible FLOPs.
        """
        _validate_sizes(d=d)
        if rank <= 0:
            raise ValueError("rank must be positive")
        if d == 0:
            return 0.0
        m = rows if rows is not None else max(1, int(math.sqrt(d)))
        if m <= 0:
            raise ValueError("rows must be positive")
        launch_seconds = (
            rank
            * self.orthogonalization_launches_per_column
            * self.gpu.kernel_launch_overhead_s
        )
        ortho_flops = self.orthogonalization_flops_factor * m * rank * rank
        ortho_compute = ortho_flops / self.gpu.flops_per_second(Precision.FP32)
        ortho_memory = (m * rank * 4.0 * rank * 0.5) / (
            self.gpu.memory.global_bandwidth_gbps * 1e9
        ) * self.gpu.memory.random_access_penalty
        return launch_seconds + max(ortho_compute, ortho_memory)

    # ------------------------------------------------------------------ #
    # Generic kernels
    # ------------------------------------------------------------------ #
    def cast_time(self, d: int, from_bits: int = 32, to_bits: int = 16) -> float:
        """Time to cast ``d`` values between precisions (e.g. FP32 -> FP16)."""
        _validate_sizes(d=d)
        if from_bits <= 0 or to_bits <= 0:
            raise ValueError("bit widths must be positive")
        if d == 0:
            return 0.0
        return self.gpu.memory_time(d * (from_bits + to_bits) / 8.0, sequential=True)

    def elementwise_sum_time(self, d: int, precision: Precision = Precision.FP32) -> float:
        """Time of an elementwise vector addition (local reduction of one block)."""
        _validate_sizes(d=d)
        if d == 0:
            return 0.0
        bytes_per_element = 3.0 * precision.bits / 8.0
        return self.gpu.elementwise_time(
            d, flops_per_element=1.0, bytes_per_element=bytes_per_element, precision=precision
        )


def _validate_sizes(**kwargs: int) -> None:
    for name, value in kwargs.items():
        if value < 0:
            raise ValueError(f"{name} must be non-negative, got {value}")
