"""Composable fault-recovery policies over scenario-injected failures.

The scenario engine (PR 5) *injects* faults -- stragglers, flapped links,
churn -- and prices every round as if the training system simply waited:
a slowdown window stretches each of its rounds forever, and the only
defence is choosing a different scheme offline.  Real systems react.
Survivability work on virtual networks frames this as explicit recovery
policies layered over failures, and that is what this module provides: a
small, composable policy language describing *how the system responds*
when a round runs long, priced through the same per-round machinery so
policies are comparable on the same footing as schemes and scenarios.

A :class:`RecoveryPolicy` composes up to one rule of each kind:

* :func:`timeout` -- ``timeout(k=3)``: abort the collective once the round
  exceeds ``k`` times the nominal (unperturbed) round time.  An aborted
  round costs exactly the deadline; its update is skipped unless a stale
  rule saves it.
* :func:`retry` -- ``retry(max=2, backoff=0.1)``: when a round prices
  degraded (flap/degrade/churn events), abandon the attempt, wait an
  exponential-backoff delay (``backoff * 2**i`` nominal rounds), and
  re-issue the round.  Stochastic events (churn) are re-drawn on each
  attempt -- transient stragglers may clear; deterministic windows persist
  and the retry budget is honestly wasted.
* :func:`drop_stragglers` -- ``drop(max_workers=f)``: partial aggregation.
  Excuse up to ``f`` of the worst-perturbed workers (the collective stops
  waiting for them) and aggregate the remaining ``n - f`` contributions,
  rescaled by ``n / (n - f)``; the explicit variance cost is
  :attr:`RoundResolution.vnmse_penalty`.
* :func:`stale_gradients` -- ``stale(max=s)``: graceful degradation for
  timed-out rounds.  Re-apply the last successful aggregate for up to
  ``s`` *consecutive* aborted rounds before falling back to skipping the
  update entirely (``skip`` is the implicit default for aborts).

Policies are spec strings with the same parse / round-trip / suggestion UX
as ``scenario(...)``::

    policy("timeout(k=3) + retry(max=2, backoff=0.1) + drop(max_workers=1)")

The empty policy (``policy("")`` or ``policy("none")``) is **bit-exact**
with the PR 5 scenario path: no branch of the resolution logic runs, so
every existing number is preserved (property-tested across the scheme
registry and both kernel backends).
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Sequence

from repro.simulator.scenario import (
    DEGRADED_RELATIVE_TOLERANCE,
    Scenario,
    ScenarioMetrics,
    scenario_metrics,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.cluster import ClusterSpec

__all__ = [
    "PolicyRule",
    "TimeoutRule",
    "RetryRule",
    "DropRule",
    "StaleRule",
    "RecoveryPolicy",
    "RoundResolution",
    "RecoveredRun",
    "PolicyEngine",
    "UnknownPolicyRuleError",
    "PolicySyntaxError",
    "PolicyParamError",
    "NONE_SPEC",
    "available_policy_rules",
    "parse_policy",
    "policy",
    "timeout",
    "retry",
    "drop_stragglers",
    "stale_gradients",
    "deadline_clamp",
    "excuse_stragglers",
    "run_recovered_scenario",
]


class UnknownPolicyRuleError(KeyError):
    """An unknown recovery-rule name, with close-match suggestions."""

    def __init__(self, name: str, known: list[str]):
        self.name = name
        self.known = sorted(known)
        self.suggestions = difflib.get_close_matches(name, self.known, n=3, cutoff=0.5)
        message = f"unknown recovery rule {name!r}"
        if self.suggestions:
            message += f"; did you mean: {', '.join(self.suggestions)}?"
        message += f" (known: {', '.join(self.known)})"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError.__str__ shows the repr of args[0]
        return self.args[0]


class PolicySyntaxError(ValueError):
    """A policy spec string that does not conform to the grammar."""

    def __init__(self, text: str, position: int, reason: str):
        self.text = text
        self.position = position
        self.reason = reason
        pointer = " " * position + "^"
        super().__init__(f"invalid recovery policy spec: {reason}\n  {text}\n  {pointer}")


class PolicyParamError(ValueError):
    """A well-formed policy spec whose arguments do not fit the rule."""


def _format_number(value: float) -> str:
    """Shortest spelling that parses back to exactly ``value``.

    ``%g`` keeps common specs tidy (``k=3``, not ``k=3.0``) but only carries
    six significant digits; when that would lose precision -- and break the
    round-trip contract -- fall back to the exact ``repr``.
    """
    text = f"{value:g}"
    return text if float(text) == value else repr(value)


# --------------------------------------------------------------------------- #
# Rules
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class PolicyRule:
    """One recovery behaviour; a policy composes at most one of each kind."""

    #: Spec-language family name (set per subclass).
    kind = "abstract"

    def spec(self) -> str:
        """Canonical spec-string form of this rule."""
        args = ", ".join(self._spec_args())
        return f"{self.kind}({args})" if args else self.kind

    def _spec_args(self) -> list[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class TimeoutRule(PolicyRule):
    """Abort the collective once the round exceeds ``k`` nominal round times."""

    k: float = 3.0
    kind = "timeout"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(
                f"k ({self.k:g}) must be >= 1: the deadline is k x the nominal "
                "round time, and a sub-nominal deadline would abort every round"
            )

    def _spec_args(self) -> list[str]:
        return [f"k={_format_number(self.k)}"]


@dataclass(frozen=True)
class RetryRule(PolicyRule):
    """Re-issue degraded rounds up to ``max_attempts`` times with backoff.

    Each failed attempt costs its own (possibly deadline-clamped) duration
    plus ``backoff * 2**i`` nominal round times of exponential-backoff
    delay before attempt ``i + 1``.
    """

    max_attempts: int = 2
    backoff: float = 0.1
    kind = "retry"

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ValueError(
                f"max ({self.max_attempts}) must be >= 0: a negative retry "
                "budget is meaningless (0 disables retries)"
            )
        if self.backoff < 0:
            raise ValueError(
                f"backoff ({self.backoff:g}) must be >= 0 (it is a delay, "
                "in nominal round times, before each re-issue)"
            )

    def _spec_args(self) -> list[str]:
        return [f"max={self.max_attempts}", f"backoff={_format_number(self.backoff)}"]


@dataclass(frozen=True)
class DropRule(PolicyRule):
    """Excuse up to ``max_workers`` stragglers; aggregate the rest, rescaled."""

    max_workers: int = 1
    kind = "drop"

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError(
                f"max_workers ({self.max_workers}) must be >= 1: dropping "
                "zero workers never changes the round (omit the rule instead)"
            )

    def _spec_args(self) -> list[str]:
        return [f"max_workers={self.max_workers}"]


@dataclass(frozen=True)
class StaleRule(PolicyRule):
    """Re-apply the last good aggregate for up to ``max_stale`` consecutive aborts."""

    max_stale: int = 1
    kind = "stale"

    def __post_init__(self) -> None:
        if self.max_stale < 0:
            raise ValueError(
                f"max ({self.max_stale}) must be >= 0 (0 always skips "
                "timed-out updates instead of re-applying a stale aggregate)"
            )

    def _spec_args(self) -> list[str]:
        return [f"max={self.max_stale}"]


#: Canonical composition order of rule kinds within a policy spec; also the
#: order the engine applies them in (retry, then drop, then the deadline).
_KIND_ORDER = ("timeout", "retry", "drop", "stale")


# --------------------------------------------------------------------------- #
# The policy container
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class RecoveryPolicy:
    """A composition of recovery rules, at most one per kind.

    Attributes:
        rules: The rules, stored in canonical kind order regardless of the
            order they were spelled in (so spec strings round-trip and two
            spellings of the same policy share sweep memo entries).
        name: Optional display name (not part of equality / cache identity).
    """

    rules: tuple[PolicyRule, ...] = ()
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        seen: dict[str, PolicyRule] = {}
        for rule in self.rules:
            if not isinstance(rule, PolicyRule):
                raise TypeError(f"not a PolicyRule: {rule!r}")
            if rule.kind in seen:
                raise PolicyParamError(
                    f"policy composes two {rule.kind!r} rules; "
                    "a policy takes at most one rule of each kind"
                )
            seen[rule.kind] = rule
        ordered = tuple(seen[kind] for kind in _KIND_ORDER if kind in seen)
        object.__setattr__(self, "rules", ordered)

    @classmethod
    def of(cls, *rules: PolicyRule, name: str = "") -> "RecoveryPolicy":
        """Build a policy from rules given positionally."""
        return cls(rules=tuple(rules), name=name)

    @property
    def is_empty(self) -> bool:
        """Whether the policy has no rules (the provably bit-exact case)."""
        return not self.rules

    def _rule(self, kind: str) -> PolicyRule | None:
        for rule in self.rules:
            if rule.kind == kind:
                return rule
        return None

    @property
    def timeout_rule(self) -> TimeoutRule | None:
        return self._rule("timeout")  # type: ignore[return-value]

    @property
    def retry_rule(self) -> RetryRule | None:
        return self._rule("retry")  # type: ignore[return-value]

    @property
    def drop_rule(self) -> DropRule | None:
        return self._rule("drop")  # type: ignore[return-value]

    @property
    def stale_rule(self) -> StaleRule | None:
        return self._rule("stale")  # type: ignore[return-value]

    def cache_key(self) -> "RecoveryPolicy":
        """Hashable full identity for sweep memoization (the frozen self)."""
        return self

    def spec(self) -> str:
        """The canonical, round-trippable spec string of this policy."""
        if not self.rules:
            return NONE_SPEC
        return " + ".join(rule.spec() for rule in self.rules)

    def label(self) -> str:
        """Display label: the name when given, the canonical spec otherwise."""
        return self.name or self.spec()


#: Spec spelling of the empty policy (``policy("none")`` parses to it; the
#: empty string is accepted too).
NONE_SPEC = "none"


# --------------------------------------------------------------------------- #
# The spec-string language
# --------------------------------------------------------------------------- #

_REQUIRED = object()


@dataclass(frozen=True)
class _RuleParam:
    """One spec-language parameter of a rule family."""

    names: tuple[str, ...]  # first name is canonical
    kind: type
    attr: str
    default: object = _REQUIRED

    def coerce(self, value: object, family: str) -> object:
        if self.kind is int:
            if isinstance(value, int) and not isinstance(value, bool):
                return value
        elif self.kind is float:
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
        raise PolicyParamError(
            f"{family}: parameter {self.names[0]!r} expects {self.kind.__name__}, "
            f"got {value!r}"
        )


@dataclass(frozen=True)
class _RuleFamily:
    """A recovery-rule family: class, aliases, and typed parameters."""

    name: str
    cls: type
    params: tuple[_RuleParam, ...]
    aliases: tuple[str, ...] = ()

    def param_named(self, key: str) -> _RuleParam:
        for param in self.params:
            if key in param.names:
                return param
        valid = ", ".join(p.names[0] for p in self.params) or "(none)"
        raise PolicyParamError(
            f"{self.name}: unknown parameter {key!r}; valid parameters: {valid}"
        )

    def build(self, args: Sequence[tuple[str | None, object]]) -> PolicyRule:
        bound: dict[_RuleParam, object] = {}
        positional_cursor = 0
        for key, value in args:
            if key is None:
                if positional_cursor >= len(self.params):
                    raise PolicyParamError(
                        f"{self.name}: too many positional arguments "
                        f"(takes {len(self.params)})"
                    )
                param = self.params[positional_cursor]
                positional_cursor += 1
            else:
                param = self.param_named(key)
            if param in bound:
                raise PolicyParamError(
                    f"{self.name}: parameter {param.names[0]!r} given twice"
                )
            bound[param] = param.coerce(value, self.name)
        kwargs = {param.attr: value for param, value in bound.items()}
        try:
            return self.cls(**kwargs)
        except ValueError as error:
            raise PolicyParamError(f"{self.name}: {error}") from None


_RULE_FAMILIES: dict[str, _RuleFamily] = {}
_RULE_NAMES: dict[str, _RuleFamily] = {}  # aliases included


def _register_rule(family: _RuleFamily) -> None:
    _RULE_FAMILIES[family.name] = family
    for alias in (family.name, *family.aliases):
        _RULE_NAMES[alias] = family


_register_rule(
    _RuleFamily(
        "timeout",
        TimeoutRule,
        (_RuleParam(("k",), float, "k", default=3.0),),
        aliases=("deadline",),
    )
)
_register_rule(
    _RuleFamily(
        "retry",
        RetryRule,
        (
            _RuleParam(("max", "max_attempts"), int, "max_attempts", default=2),
            _RuleParam(("backoff",), float, "backoff", default=0.1),
        ),
    )
)
_register_rule(
    _RuleFamily(
        "drop",
        DropRule,
        (_RuleParam(("max_workers", "f"), int, "max_workers", default=1),),
        aliases=("drop_stragglers",),
    )
)
_register_rule(
    _RuleFamily(
        "stale",
        StaleRule,
        (_RuleParam(("max", "max_stale"), int, "max_stale", default=1),),
        aliases=("stale_gradients",),
    )
)


def available_policy_rules() -> list[str]:
    """Canonical recovery-rule names, sorted."""
    return sorted(_RULE_FAMILIES)


_RULE_TERM_RE = re.compile(
    r"""
    (?P<name>[a-z_][a-z0-9_]*)
    \s*
    (?:\( (?P<args>[^()]*) \))?
    """,
    re.VERBOSE,
)

_NUMBER_RE = re.compile(r"^[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?$")


def _parse_literal(text: str, spec: str, position: int) -> object:
    token = text.strip()
    if _NUMBER_RE.match(token):
        try:
            return int(token)
        except ValueError:
            return float(token)
    raise PolicySyntaxError(spec, position, f"expected a number, got {token!r}")


def _parse_rule_term(spec: str, position: int) -> tuple[PolicyRule, int]:
    match = _RULE_TERM_RE.match(spec, position)
    if match is None or not match.group("name"):
        raise PolicySyntaxError(spec, position, "expected a recovery rule name")
    name = match.group("name")
    family = _RULE_NAMES.get(name)
    if family is None:
        raise UnknownPolicyRuleError(name, sorted(_RULE_NAMES))
    args: list[tuple[str | None, object]] = []
    raw_args = match.group("args")
    if raw_args is not None and raw_args.strip():
        args_offset = match.start("args")
        for fragment in raw_args.split(","):
            fragment_offset = args_offset + raw_args.index(fragment)
            if "=" in fragment:
                key, _, raw_value = fragment.partition("=")
                key = key.strip()
                if not key.isidentifier():
                    raise PolicySyntaxError(
                        spec, fragment_offset, f"bad parameter name {key!r}"
                    )
                args.append((key, _parse_literal(raw_value, spec, fragment_offset)))
            else:
                args.append((None, _parse_literal(fragment, spec, fragment_offset)))
    end = match.end()
    if end < len(spec) and spec[end] == "@":
        raise PolicySyntaxError(
            spec,
            end,
            "recovery rules do not take round windows; a policy is active "
            "for the whole run (windows belong to scenario events)",
        )
    rule = family.build(tuple(args))
    return rule, end


def parse_policy(text: str, *, name: str = "") -> RecoveryPolicy:
    """Parse a policy spec string into a :class:`RecoveryPolicy`.

    Grammar (whitespace-insensitive)::

        policy := "" | "none" | rule ("+" rule)*
        rule   := RULE [ "(" [ arg ("," arg)* ] ")" ]
        arg    := NAME "=" NUMBER | NUMBER

    All parameters are validated at parse time (``timeout(k=0.5)`` or
    ``retry(max=-1)`` fail here, not mid-simulation).

    Raises:
        PolicySyntaxError: Malformed spec text.
        UnknownPolicyRuleError: Unknown rule name (with suggestions).
        PolicyParamError: Arguments not matching the rule's parameters.
    """
    if not isinstance(text, str):
        raise PolicySyntaxError(str(text), 0, "policy spec must be a string")
    stripped = text.strip()
    if not stripped or stripped == NONE_SPEC:
        return RecoveryPolicy(name=name)
    rules: list[PolicyRule] = []
    position = 0
    while True:
        while position < len(text) and text[position].isspace():
            position += 1
        rule, position = _parse_rule_term(text, position)
        rules.append(rule)
        while position < len(text) and text[position].isspace():
            position += 1
        if position >= len(text):
            break
        if text[position] != "+":
            raise PolicySyntaxError(
                text, position, f"expected '+' between rules, got {text[position]!r}"
            )
        position += 1
    return RecoveryPolicy(rules=tuple(rules), name=name)


def policy(
    value: "str | RecoveryPolicy | PolicyRule | Sequence[PolicyRule] | None",
    *,
    name: str = "",
) -> RecoveryPolicy:
    """Coerce a spec string, a rule (or sequence), or a policy to a policy.

    The public constructor mirroring :func:`~repro.simulator.scenario.
    scenario`: ``policy("timeout(k=3) + drop(max_workers=1)")``.  ``None``
    and the empty string both coerce to the empty (bit-exact) policy.
    Passing an existing :class:`RecoveryPolicy` returns it unchanged.
    """
    if value is None:
        return RecoveryPolicy(name=name)
    if isinstance(value, RecoveryPolicy):
        return value
    if isinstance(value, str):
        return parse_policy(value, name=name)
    if isinstance(value, PolicyRule):
        return RecoveryPolicy(rules=(value,), name=name)
    return RecoveryPolicy(rules=tuple(value), name=name)


# --------------------------------------------------------------------------- #
# Programmatic rule constructors
# --------------------------------------------------------------------------- #


def timeout(k: float = 3.0) -> TimeoutRule:
    """Abort the collective at ``k`` times the nominal round time."""
    return TimeoutRule(k=k)


def retry(max_attempts: int = 2, backoff: float = 0.1) -> RetryRule:
    """Re-issue degraded rounds up to ``max_attempts`` times with backoff."""
    return RetryRule(max_attempts=max_attempts, backoff=backoff)


def drop_stragglers(max_workers: int = 1) -> DropRule:
    """Excuse up to ``max_workers`` stragglers and aggregate the rest."""
    return DropRule(max_workers=max_workers)


def stale_gradients(max_stale: int = 1) -> StaleRule:
    """Re-apply the last good aggregate for up to ``max_stale`` consecutive aborts."""
    return StaleRule(max_stale=max_stale)


# --------------------------------------------------------------------------- #
# Straggler identification
# --------------------------------------------------------------------------- #

#: Relative perturbation above a worker's reference profile before the drop
#: rule considers it a straggler (absorbs float noise in event arithmetic).
_STRAGGLER_RELATIVE_TOLERANCE = 1e-9


def _merged_segments(cluster: "ClusterSpec", base: "ClusterSpec"):
    """Walk ``(start, stop, effective_profile, reference_profile)`` spans.

    Both clusters cover the same world; the walk advances through both
    canonical segment lists at once, so it is O(#classes) even on
    fleet-scale populations.
    """
    effective = list(cluster.profile_segments())
    reference = list(base.profile_segments())
    position = 0
    ei = ri = 0
    e_left = effective[0][1]
    r_left = reference[0][1]
    while ei < len(effective) and ri < len(reference):
        span = min(e_left, r_left)
        yield position, position + span, effective[ei][0], reference[ri][0]
        position += span
        e_left -= span
        r_left -= span
        if e_left == 0:
            ei += 1
            if ei < len(effective):
                e_left = effective[ei][1]
        if r_left == 0:
            ri += 1
            if ri < len(reference):
                r_left = reference[ri][1]


def excuse_stragglers(
    cluster: "ClusterSpec", base: "ClusterSpec", max_workers: int
) -> "tuple[ClusterSpec, tuple[int, ...]]":
    """Excuse up to ``max_workers`` of the worst-perturbed workers.

    A worker is a straggler when its effective profile is measurably worse
    than its reference profile in ``base`` (the unperturbed cluster);
    excused workers stop gating the collective, which the simulator models
    by restoring their profiles to the reference.  The identification walks
    canonical profile segments, so fleet-scale clusters stay O(#classes).

    Returns the rewritten cluster and the excused ranks (empty when no
    worker qualifies, e.g. membership changed or nothing is degraded).
    """
    from repro.simulator.cluster import WorkerProfile

    if cluster.world_size != base.world_size:
        # Membership events changed the world: rank identities no longer
        # line up with the base population, so dropping is not defined.
        return cluster, ()

    candidates: list[tuple[float, int, int, WorkerProfile]] = []
    for start, stop, profile, ref in _merged_segments(cluster, base):
        badness = max(profile.slowdown / ref.slowdown, profile.nic_scale / ref.nic_scale)
        if badness > 1.0 + _STRAGGLER_RELATIVE_TOLERANCE:
            candidates.append((badness, start, stop, ref))
    if not candidates:
        return cluster, ()
    candidates.sort(key=lambda item: (-item[0], item[1]))

    excused: list[int] = []
    restored: dict[int, WorkerProfile] = {}
    budget = max_workers
    for _, start, stop, ref in candidates:
        if budget <= 0:
            break
        take = min(budget, stop - start)
        for rank in range(start, start + take):
            excused.append(rank)
            restored[rank] = ref
        budget -= take

    if cluster.worker_profiles is not None:
        profiles = list(cluster.worker_profiles)
        for rank, ref in restored.items():
            profiles[rank] = ref
        rewritten = replace(cluster, worker_profiles=tuple(profiles))
    else:
        overrides = dict(cluster.profile_overrides or ())
        overrides.update(restored)
        rewritten = replace(cluster, profile_overrides=tuple(sorted(overrides.items())))
    return rewritten, tuple(sorted(excused))


# --------------------------------------------------------------------------- #
# Per-round resolution
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class RoundResolution:
    """How one round played out under a recovery policy.

    Attributes:
        round_index: The round (0-indexed).
        seconds: Total charged wall time: the accepted attempt plus every
            failed attempt and its backoff delay.
        attempts: Pricing attempts made (1 = no retry fired).
        timed_out: Whether the accepted attempt hit the deadline (the round
            was aborted at ``k`` nominal round times).
        dropped_workers: Workers excused by the drop rule this round.
        excused_ranks: The excused ranks (empty when none).
        stale: The update was replaced by the last good aggregate.
        skipped: The update was skipped entirely.
        cluster: Effective cluster of the accepted attempt (post-drop), the
            one a trainer aggregates on.
    """

    round_index: int
    seconds: float
    attempts: int
    timed_out: bool
    dropped_workers: int
    excused_ranks: tuple[int, ...]
    stale: bool
    skipped: bool
    cluster: "ClusterSpec"

    @property
    def retries(self) -> int:
        """Failed attempts re-issued before the accepted one."""
        return self.attempts - 1

    @property
    def vnmse_penalty(self) -> float:
        """Variance inflation of aggregating ``n - f`` of ``n`` contributions.

        The mean of ``n - f`` i.i.d. worker gradients has ``n / (n - f)``
        times the variance of the full mean -- the explicit quality price
        of partial aggregation (1.0 when nothing was dropped).
        """
        world = self.cluster.world_size
        kept = world - self.dropped_workers
        if kept <= 0:
            return float("inf")
        return world / kept


def deadline_clamp(
    price_round: "Callable[[ClusterSpec], float]",
) -> "Callable[[ClusterSpec, float | None], tuple[float, bool]]":
    """Adapt a plain per-cluster pricing function to the engine's contract.

    The engine prices rounds through ``price(cluster, deadline_seconds) ->
    (seconds, aborted)`` so call sites that schedule through
    :func:`~repro.simulator.pipeline.simulate_schedule` can thread the
    deadline into the scheduler itself.  Call sites with a plain float
    pricing function wrap it here: the clamp is applied after the fact.
    """

    def wrapped(cluster: "ClusterSpec", deadline: float | None) -> tuple[float, bool]:
        seconds = price_round(cluster)
        if deadline is not None and seconds > deadline:
            return deadline, True
        return seconds, False

    return wrapped


class PolicyEngine:
    """Stateful per-round resolver: scenario faults in, recovered rounds out.

    The engine owns the pricing memo (per distinct effective cluster), the
    deadline derived from the nominal round time, and the consecutive-stale
    counter; :meth:`resolve` is called once per round, in round order.
    With an empty policy every resolution is exactly the raw scenario
    round -- no branch of the recovery logic runs.
    """

    def __init__(
        self,
        base: "ClusterSpec",
        scenario: Scenario,
        policy: RecoveryPolicy,
        price_round: "Callable[[ClusterSpec, float | None], tuple[float, bool]]",
        *,
        nominal_seconds: float | None = None,
    ):
        self.base = base
        self.scenario = scenario
        self.policy = policy
        self._price_round = price_round
        self._memo: dict[object, tuple[float, bool]] = {}
        if nominal_seconds is None:
            nominal_seconds, _ = self._price(base, None)
        self.nominal_seconds = float(nominal_seconds)
        timeout_rule = policy.timeout_rule
        self.deadline_seconds = (
            timeout_rule.k * self.nominal_seconds if timeout_rule is not None else None
        )
        self._threshold = self.nominal_seconds * (1.0 + DEGRADED_RELATIVE_TOLERANCE)
        self._consecutive_stale = 0
        self.timed_out_rounds = 0
        self.retries = 0
        self.dropped_worker_rounds = 0
        self.stale_rounds = 0

    @property
    def distinct_clusters(self) -> int:
        """How many distinct effective configurations were priced so far."""
        return len(self._memo)

    def _price(self, cluster: "ClusterSpec", deadline: float | None) -> tuple[float, bool]:
        key = cluster.cache_key()
        hit = self._memo.get(key)
        if hit is None:
            hit = self._price_round(cluster, deadline)
            self._memo[key] = hit
        return hit

    def _degraded(self, seconds: float, aborted: bool) -> bool:
        return aborted or seconds > self._threshold

    def adopt_state(self, predecessor: "PolicyEngine") -> None:
        """Carry run-level recovery state over from a predecessor engine.

        An adaptive trainer that switches schemes mid-run rebuilds the
        engine (the deadline and pricing memo are scheme-specific) but the
        consecutive-stale counter and the recovery totals belong to the
        *run*, so the successor inherits them.
        """
        self._consecutive_stale = predecessor._consecutive_stale
        self.timed_out_rounds = predecessor.timed_out_rounds
        self.retries = predecessor.retries
        self.dropped_worker_rounds = predecessor.dropped_worker_rounds
        self.stale_rounds = predecessor.stale_rounds

    def resolve(self, round_index: int, *, can_stale: bool = True) -> RoundResolution:
        """Resolve round ``round_index`` under the policy.

        ``can_stale`` lets a trainer veto stale re-application when it has
        no previous aggregate to re-apply (round 0 aborts fall back to a
        skipped update).
        """
        policy = self.policy
        cluster = self.scenario.cluster_at(self.base, round_index)
        seconds, aborted = self._price(cluster, self.deadline_seconds)

        if policy.is_empty:
            return RoundResolution(
                round_index=round_index,
                seconds=seconds,
                attempts=1,
                timed_out=False,
                dropped_workers=0,
                excused_ranks=(),
                stale=False,
                skipped=False,
                cluster=cluster,
            )

        attempts = 1
        overhead = 0.0
        excused: tuple[int, ...] = ()
        dropped = 0

        retry_rule = policy.retry_rule
        if retry_rule is not None and self._degraded(seconds, aborted):
            for attempt in range(1, retry_rule.max_attempts + 1):
                # The failed attempt runs to its (deadline-clamped) end,
                # then the backoff delay elapses before the re-issue.
                overhead += seconds
                overhead += retry_rule.backoff * (2.0 ** (attempt - 1)) * self.nominal_seconds
                redrawn = self.scenario.cluster_at(self.base, round_index, attempt=attempt)
                seconds, aborted = self._price(redrawn, self.deadline_seconds)
                cluster = redrawn
                attempts += 1
                if not self._degraded(seconds, aborted):
                    break

        drop_rule = policy.drop_rule
        if drop_rule is not None and self._degraded(seconds, aborted):
            rewritten, ranks = excuse_stragglers(cluster, self.base, drop_rule.max_workers)
            if ranks:
                d_seconds, d_aborted = self._price(rewritten, self.deadline_seconds)
                if (aborted and not d_aborted) or d_seconds < seconds:
                    cluster, seconds, aborted = rewritten, d_seconds, d_aborted
                    excused, dropped = ranks, len(ranks)

        timed_out = aborted
        stale = skipped = False
        if timed_out:
            stale_rule = policy.stale_rule
            if (
                stale_rule is not None
                and can_stale
                and self._consecutive_stale < stale_rule.max_stale
            ):
                stale = True
                self._consecutive_stale += 1
            else:
                skipped = True
        else:
            self._consecutive_stale = 0

        self.timed_out_rounds += int(timed_out)
        self.retries += attempts - 1
        self.dropped_worker_rounds += dropped
        self.stale_rounds += int(stale)
        return RoundResolution(
            round_index=round_index,
            seconds=overhead + seconds,
            attempts=attempts,
            timed_out=timed_out,
            dropped_workers=dropped,
            excused_ranks=excused,
            stale=stale,
            skipped=skipped,
            cluster=cluster,
        )

    def metrics(self, round_seconds: Sequence[float]) -> ScenarioMetrics:
        """Tail summary of the resolved round times, recovery counters included."""
        return replace(
            scenario_metrics(round_seconds, self.nominal_seconds),
            timed_out_rounds=self.timed_out_rounds,
            retries=self.retries,
            dropped_worker_rounds=self.dropped_worker_rounds,
            stale_rounds=self.stale_rounds,
        )


# --------------------------------------------------------------------------- #
# Running a scenario under a policy
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class RecoveredRun:
    """Per-round resolutions of one policy-governed scenario run.

    Attributes:
        scenario: The scenario that was run.
        policy: The governing recovery policy.
        round_seconds: Charged time of every round, in round order.
        resolutions: Per-round :class:`RoundResolution` records.
        metrics: Tail summary with recovery counters
            (:class:`~repro.simulator.scenario.ScenarioMetrics`).
        distinct_clusters: Distinct effective configurations priced.
    """

    scenario: Scenario
    policy: RecoveryPolicy
    round_seconds: tuple[float, ...]
    resolutions: tuple[RoundResolution, ...]
    metrics: ScenarioMetrics
    distinct_clusters: int

    @property
    def mean_vnmse_penalty(self) -> float:
        """Mean per-round variance inflation from partial aggregation."""
        if not self.resolutions:
            return 1.0
        return sum(r.vnmse_penalty for r in self.resolutions) / len(self.resolutions)


def run_recovered_scenario(
    base: "ClusterSpec",
    scenario: Scenario,
    policy: RecoveryPolicy,
    num_rounds: int,
    price_round: "Callable[[ClusterSpec, float | None], tuple[float, bool]]",
    *,
    nominal_seconds: float | None = None,
) -> RecoveredRun:
    """Drive a pricing function over a scenario's rounds under a policy.

    The recovery-aware sibling of :func:`~repro.simulator.scenario.
    run_scenario`: ``price_round`` maps ``(cluster, deadline_seconds)`` to
    ``(seconds, aborted)`` (wrap a plain float function with
    :func:`deadline_clamp`), is memoized per distinct effective cluster,
    and each round is resolved through the full retry / drop / timeout /
    stale pipeline.  With the empty policy the charged round times equal
    :func:`run_scenario`'s bit-exactly.
    """
    if num_rounds < 1:
        raise ValueError("num_rounds must be >= 1")
    engine = PolicyEngine(
        base, scenario, policy, price_round, nominal_seconds=nominal_seconds
    )
    resolutions = tuple(engine.resolve(index) for index in range(num_rounds))
    round_seconds = tuple(resolution.seconds for resolution in resolutions)
    return RecoveredRun(
        scenario=scenario,
        policy=policy,
        round_seconds=round_seconds,
        resolutions=resolutions,
        metrics=engine.metrics(round_seconds),
        distinct_clusters=engine.distinct_clusters,
    )
