"""``repro.service`` -- the advisor service subsystem.

A long-lived asyncio layer that answers the paper's core question --
*which scheme wins for this workload, cluster, and failure scenario?* --
as a query, at volume:

* :mod:`repro.service.models` -- declarative :class:`AdviseRequest` /
  :class:`AdviseResponse` schema, canonicalized through the same
  ``cache_key()`` machinery the sweep memo uses;
* :mod:`repro.service.advisor` -- the :class:`AdvisorService` core:
  warm-cache fast path, single-flight dedup, micro-batched grid sweeps,
  bounded-queue backpressure, deadlines, graceful drain;
* :mod:`repro.service.cache` -- the two-tier :class:`PricingCache`
  (in-memory LRU + JSON/sqlite spill that survives restarts);
* :mod:`repro.service.metrics` -- :class:`ServiceMetrics` telemetry
  (latency percentiles, queue depth, batch sizes, cache hit rate).

Typical use::

    import asyncio
    from repro.service import AdviseRequest, AdvisorService

    async def main():
        async with AdvisorService(spill_path="pricing.sqlite") as advisor:
            response = await advisor.advise(AdviseRequest(
                specs=("thc(q=4, rot=partial, agg=sat)", "powersgd(r=4)"),
                workload="bert_large",
                scenario="slowdown(w=1, x=8)@10..40",
                metric_kwargs={"num_rounds": 60},
            ))
            print(response.best.spec, response.winner_margin)

    asyncio.run(main())
"""

from repro.service.advisor import AdvisorService
from repro.service.cache import CachedPoint, PricingCache
from repro.service.errors import (
    DeadlineExceededError,
    InvalidRequestError,
    ServiceError,
    ServiceOverloadedError,
    ServiceStoppedError,
)
from repro.service.metrics import ServiceMetrics
from repro.service.models import (
    ADVISE_METRICS,
    WORKLOADS,
    AdviseRequest,
    AdviseResponse,
    RankedSpec,
    resolve_workload,
)

__all__ = [
    "ADVISE_METRICS",
    "WORKLOADS",
    "AdviseRequest",
    "AdviseResponse",
    "AdvisorService",
    "CachedPoint",
    "DeadlineExceededError",
    "InvalidRequestError",
    "PricingCache",
    "RankedSpec",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "ServiceStoppedError",
    "resolve_workload",
]
