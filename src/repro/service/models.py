"""Request/response schema of the advisor service.

An :class:`AdviseRequest` is the paper's question made declarative: *given
this workload, this cluster, and this failure scenario, which of these
candidate schemes wins on this metric?*  Every axis is expressed in the
repo's canonical spec languages -- scheme spec strings, named workloads,
:class:`~repro.simulator.cluster.ClusterSpec` objects, scenario spec
strings -- and canonicalized through the same ``cache_key()`` machinery the
sweep memo uses, so two differently-spelled requests for the same question
share cache entries, in-flight evaluations, and persisted pricing.

The :class:`AdviseResponse` ranks the candidates best-first with margins,
tail metrics (under a scenario), and per-candidate cache provenance, and is
JSON-serializable via :meth:`AdviseResponse.to_dict`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Mapping, Sequence

from repro.compression.registry import make_scheme
from repro.service.errors import InvalidRequestError
from repro.simulator.cluster import ClusterSpec
from repro.simulator.scenario import Scenario, scenario as as_scenario
from repro.training.workloads import WorkloadSpec, bert_large_wikitext, vgg19_tinyimagenet

#: Metrics the advisor can rank on (the session's sweep metrics).
ADVISE_METRICS = ("throughput", "vnmse", "tta")

#: Named workloads requests may reference by string.
WORKLOADS = {
    "bert_large": bert_large_wikitext,
    "vgg19": vgg19_tinyimagenet,
}


def resolve_workload(workload: str | WorkloadSpec | None) -> WorkloadSpec | None:
    """Resolve a workload given by name through :data:`WORKLOADS`."""
    if workload is None or isinstance(workload, WorkloadSpec):
        return workload
    try:
        return WORKLOADS[workload]()
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise InvalidRequestError(
            f"unknown workload {workload!r}; expected one of: {known} "
            "(or pass a WorkloadSpec)"
        ) from None


@lru_cache(maxsize=1024)
def canonical_spec(spec: str) -> str:
    """The round-trippable canonical form of a scheme spec (parse-checked).

    Cached because the advisor canonicalizes every request on its hot path;
    the warm-cache fast path must not re-parse spec strings per query.
    """
    scheme = make_scheme(spec)
    try:
        return scheme.spec()
    except NotImplementedError:
        # For custom factories without a spec() the registered name IS the
        # scheme's identity (the registry enforces uniqueness), not a label.
        return scheme.name  # reprolint: disable=RPL003 - registry name is the identity here


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]


@lru_cache(maxsize=256)
def _cluster_digest(cluster: ClusterSpec) -> str:
    # cache_key() is the cluster's canonical identity: the worker population
    # appears as run-length segments, so a distributional fleet and its
    # materialized per-rank twin digest identically and share cached
    # advisor responses.  The digest makes it a compact, restart-stable
    # string.
    return _digest(repr(cluster.cache_key()))


def metric_direction(metric: str, workload: WorkloadSpec | None) -> str:
    """``"max"`` or ``"min"``: which way the metric improves.

    Throughput improves up, vNMSE improves down, and TTA follows the
    workload's goal metric (perplexity improves down, accuracy up).
    """
    if metric == "throughput":
        return "max"
    if metric == "vnmse":
        return "min"
    if workload is not None and workload.metric_improves == "down":
        return "min"
    return "max"


@dataclass(frozen=True)
class AdviseRequest:
    """One advisor query, pure data.

    Attributes:
        specs: Candidate scheme spec strings to rank (at least one).
        workload: A registered workload name (:data:`WORKLOADS`) or a
            :class:`WorkloadSpec`; required for the throughput and tta
            metrics, ignored-by-construction for vnmse.
        cluster: Cluster to price on; ``None`` uses the service's cluster.
        scenario: Optional dynamic-events axis -- a
            :class:`~repro.simulator.scenario.Scenario` or a spec string
            such as ``"slowdown(w=1, x=8)@10..40"``.
        metric: ``"throughput"`` (default), ``"vnmse"``, or ``"tta"``.
        metric_kwargs: Extra keyword arguments for the metric (for example
            ``{"num_rounds": 60}`` for scenario-conditioned throughput).
        deadline_seconds: Per-request deadline; ``None`` falls back to the
            service default (which may be unbounded).
    """

    specs: tuple[str, ...]
    workload: str | WorkloadSpec | None = None
    cluster: ClusterSpec | None = None
    scenario: Scenario | str | None = None
    metric: str = "throughput"
    metric_kwargs: Mapping[str, object] = field(default_factory=dict)
    deadline_seconds: float | None = None

    def __post_init__(self) -> None:
        specs = (self.specs,) if isinstance(self.specs, str) else tuple(self.specs)
        object.__setattr__(self, "specs", specs)
        object.__setattr__(self, "metric_kwargs", dict(self.metric_kwargs))
        if not specs:
            raise InvalidRequestError("an AdviseRequest needs at least one candidate spec")
        if self.metric not in ADVISE_METRICS:
            raise InvalidRequestError(
                f"unknown metric {self.metric!r}; expected one of {ADVISE_METRICS}"
            )
        if self.metric in ("throughput", "tta") and self.workload is None:
            raise InvalidRequestError(f"the {self.metric} metric needs a workload")
        if self.metric == "vnmse" and self.scenario is not None:
            raise InvalidRequestError(
                "the vnmse metric has no time dimension; scenarios do not apply"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise InvalidRequestError("deadline_seconds must be positive")

    def resolve(self, default_cluster: ClusterSpec) -> "ResolvedRequest":
        """Canonicalize against a service's default cluster.

        Validation that needs parsing (unknown schemes, malformed scenario
        specs) happens here and surfaces as :class:`InvalidRequestError`.
        """
        try:
            canonical = tuple(canonical_spec(spec) for spec in self.specs)
        except InvalidRequestError:
            raise
        except Exception as error:
            raise InvalidRequestError(f"invalid candidate spec: {error}") from error
        workload = resolve_workload(self.workload)
        cluster = self.cluster if self.cluster is not None else default_cluster
        if self.scenario is None:
            story = None
        else:
            try:
                story = as_scenario(self.scenario)
            except Exception as error:
                raise InvalidRequestError(f"invalid scenario: {error}") from error
        return ResolvedRequest(request=self, canonical_specs=canonical,
                               workload=workload, cluster=cluster, scenario=story)


@dataclass(frozen=True)
class ResolvedRequest:
    """An :class:`AdviseRequest` with every axis canonicalized.

    Carries the restart-stable point keys that identify each candidate's
    evaluation in the pricing cache and the in-flight (single-flight) table.
    """

    request: AdviseRequest
    canonical_specs: tuple[str, ...]
    workload: WorkloadSpec | None
    cluster: ClusterSpec
    scenario: Scenario | None

    @property
    def metric(self) -> str:
        return self.request.metric

    @property
    def metric_kwargs(self) -> dict:
        return dict(self.request.metric_kwargs)

    def _axes_key(self) -> str:
        workload = self.workload.name if self.workload is not None else "-"
        if self.scenario is None:
            scenario_part = "-"
        else:
            scenario_part = f"{self.scenario.spec()}#seed={self.scenario.seed}"
        kwargs = repr(sorted(self.request.metric_kwargs.items()))
        return "|".join(
            [self.metric, workload, _cluster_digest(self.cluster), scenario_part, kwargs]
        )

    def point_key(self, canonical: str) -> str:
        """Stable cache identity of one candidate's evaluation.

        Built from the canonical spec plus the canonicalized axes, so it
        survives service restarts (unlike the sweep memo's object keys) and
        two spellings of one question collide on purpose.
        """
        return f"{canonical}|{self._axes_key()}"

    def point_keys(self) -> dict[str, str]:
        """Ordered mapping of candidate spec (as written) to its point key."""
        return {
            spec: self.point_key(canonical)
            for spec, canonical in zip(self.request.specs, self.canonical_specs)
        }

    @property
    def direction(self) -> str:
        return metric_direction(self.metric, self.workload)


@dataclass(frozen=True)
class RankedSpec:
    """One candidate's position in an advisor ranking.

    Attributes:
        spec: The candidate spec as the caller wrote it.
        canonical_spec: Its canonical round-trippable form.
        value: The measured metric value.
        margin_vs_best: Relative distance to the winner
            (``abs(value - best) / abs(best)``; 0.0 for the winner itself).
        tail: Scenario tail metrics (p50/p95/p99 round seconds, degraded
            rounds, ...) when the request had a scenario; ``None`` otherwise.
        provenance: Where the value came from: ``"memory"`` (in-memory cache
            tier), ``"persistent"`` (re-hydrated from the spill tier), or
            ``"computed"`` (priced by a sweep during this request).
    """

    spec: str
    canonical_spec: str
    value: float
    margin_vs_best: float
    tail: dict | None = None
    provenance: str = "computed"

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "canonical_spec": self.canonical_spec,
            "value": self.value,
            "margin_vs_best": self.margin_vs_best,
            "tail": self.tail,
            "provenance": self.provenance,
        }


@dataclass(frozen=True)
class AdviseResponse:
    """The advisor's answer: candidates ranked best-first.

    Attributes:
        metric: The metric the ranking is on.
        direction: ``"max"`` or ``"min"`` -- how the metric improves.
        workload: Workload name (or ``None`` for vnmse).
        cluster: Display label of the cluster priced on.
        scenario: Canonical scenario spec, or ``None`` for a static request.
        ranked: Candidates best-first, with margins and provenance.
        latency_seconds: Wall-clock service latency of this request.
        batch_size: Number of requests sharing the micro-batch that served
            this one (1 for warm-cache fast-path answers).
        stale: True when this response was served from already-cached
            pricing under overload instead of a fresh evaluation; the
            ranking may then cover only the candidates that were cached.
        stale_age_seconds: Age of the oldest cached pricing behind a stale
            response (``None`` when fresh, or when the cached entries
            predate age tracking).
    """

    metric: str
    direction: str
    workload: str | None
    cluster: str
    scenario: str | None
    ranked: tuple[RankedSpec, ...]
    latency_seconds: float
    batch_size: int = 1
    stale: bool = False
    stale_age_seconds: float | None = None

    @property
    def best(self) -> RankedSpec:
        """The winning candidate."""
        return self.ranked[0]

    @property
    def winner_margin(self) -> float:
        """The winner's relative margin over the runner-up (0.0 if alone)."""
        if len(self.ranked) < 2:
            return 0.0
        return self.ranked[1].margin_vs_best

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "direction": self.direction,
            "workload": self.workload,
            "cluster": self.cluster,
            "scenario": self.scenario,
            "ranked": [entry.to_dict() for entry in self.ranked],
            "latency_seconds": self.latency_seconds,
            "batch_size": self.batch_size,
            "stale": self.stale,
            "stale_age_seconds": self.stale_age_seconds,
        }


def rank_candidates(
    resolved: ResolvedRequest,
    values: Mapping[str, tuple[float, dict | None, str]],
    *,
    latency_seconds: float,
    batch_size: int,
    stale: bool = False,
    stale_age_seconds: float | None = None,
    allow_partial: bool = False,
) -> AdviseResponse:
    """Assemble the response from per-spec ``(value, tail, provenance)``.

    ``values`` is keyed by the candidate specs as written; candidates tied
    on value keep request order (stable sort), so rankings are deterministic.
    ``allow_partial`` (the stale-on-overload path) ranks only the candidates
    present in ``values`` instead of requiring every requested spec.
    """
    direction = resolved.direction
    entries = []
    for spec, canonical in zip(resolved.request.specs, resolved.canonical_specs):
        if allow_partial and spec not in values:
            continue
        value, tail, provenance = values[spec]
        entries.append((spec, canonical, float(value), tail, provenance))
    if not entries:
        raise ValueError("rank_candidates needs at least one priced candidate")
    reverse = direction == "max"
    entries.sort(key=lambda item: item[2], reverse=reverse)
    best_value = entries[0][2]
    scale = abs(best_value)
    ranked = tuple(
        RankedSpec(
            spec=spec,
            canonical_spec=canonical,
            value=value,
            margin_vs_best=abs(value - best_value) / scale if scale > 0 else 0.0,
            tail=tail,
            provenance=provenance,
        )
        for spec, canonical, value, tail, provenance in entries
    )
    from repro.api.sweep import cluster_label  # local import: avoid cycle at module load

    return AdviseResponse(
        metric=resolved.metric,
        direction=direction,
        workload=resolved.workload.name if resolved.workload is not None else None,
        cluster=cluster_label(resolved.cluster),
        scenario=resolved.scenario.spec() if resolved.scenario is not None else None,
        ranked=ranked,
        latency_seconds=latency_seconds,
        batch_size=batch_size,
        stale=stale,
        stale_age_seconds=stale_age_seconds,
    )


def summarize_detail(metric: str, detail: object) -> dict | None:
    """JSON-safe tail summary of a sweep point's detail object.

    Only scenario-conditioned throughput estimates carry tail behaviour
    worth surfacing (and persisting); everything else summarizes to None.
    """
    scenario_metrics = getattr(detail, "scenario_metrics", None)
    if scenario_metrics is None:
        return None
    return {
        "num_rounds": scenario_metrics.num_rounds,
        "p50_round_seconds": scenario_metrics.p50_round_seconds,
        "p95_round_seconds": scenario_metrics.p95_round_seconds,
        "p99_round_seconds": scenario_metrics.p99_round_seconds,
        "max_round_seconds": scenario_metrics.max_round_seconds,
        "degraded_rounds": scenario_metrics.degraded_rounds,
        "excess_seconds": scenario_metrics.excess_seconds,
    }
