"""Two-tier persistent pricing cache for the advisor service.

Tier 1 is a bounded in-memory LRU over :class:`CachedPoint` entries; tier 2
is an optional spill keyed by the same restart-stable point keys
(:meth:`repro.service.models.ResolvedRequest.point_key`), either a JSON file
(``*.json``) or a sqlite database (any other suffix).  A miss in memory
falls through to the spill and promotes the hit, so a restarted service
re-hydrates its pricing lazily instead of re-simulating.

Entries are deliberately small and JSON-safe -- the metric value plus an
optional tail summary, never the full detail object -- so millions of
persisted pricings stay cheap to store and load.

Every operation is thread-safe: the advisor's evaluation pool and the
asyncio event loop share one cache.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

#: Provenance labels reported per hit tier.
MEMORY_TIER = "memory"
PERSISTENT_TIER = "persistent"


@dataclass(frozen=True)
class CachedPoint:
    """One persisted pricing: a point key's metric value and tail summary.

    ``created_at`` is the wall-clock UNIX time the pricing was computed
    (``None`` for entries persisted before the field existed); the advisor
    reports it as the age of stale-on-overload answers.
    """

    key: str
    value: float
    canonical_spec: str
    tail: dict | None = None
    created_at: float | None = None

    def to_payload(self) -> str:
        return json.dumps(
            {
                "value": self.value,
                "canonical_spec": self.canonical_spec,
                "tail": self.tail,
                "created_at": self.created_at,
            }
        )

    @classmethod
    def from_payload(cls, key: str, payload: str) -> "CachedPoint":
        data = json.loads(payload)
        created_at = data.get("created_at")
        return cls(
            key=key,
            value=float(data["value"]),
            canonical_spec=str(data["canonical_spec"]),
            tail=data.get("tail"),
            created_at=float(created_at) if created_at is not None else None,
        )


class _JsonSpill:
    """Whole-file JSON spill: loaded eagerly, written on flush."""

    def __init__(self, path: Path):
        self.path = path
        self._data: dict[str, str] = {}
        self._dirty = False
        if path.exists():
            self._data = {
                str(key): str(payload)
                for key, payload in json.loads(path.read_text()).items()
            }

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: str) -> str | None:
        return self._data.get(key)

    def put(self, key: str, payload: str) -> None:
        self._data[key] = payload
        self._dirty = True

    def flush(self) -> None:
        if not self._dirty:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(self._data, indent=0, sort_keys=True) + "\n")
        tmp.replace(self.path)
        self._dirty = False

    def close(self) -> None:
        self.flush()


class _SqliteSpill:
    """sqlite spill: one ``pricing(key, payload)`` table, committed on flush."""

    def __init__(self, path: Path):
        path.parent.mkdir(parents=True, exist_ok=True)
        # The PricingCache lock serializes every call, so sharing one
        # connection across threads is safe.
        self._conn = sqlite3.connect(str(path), check_same_thread=False)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS pricing (key TEXT PRIMARY KEY, payload TEXT)"
        )
        self._conn.commit()

    def __len__(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) FROM pricing").fetchone()
        return int(row[0])

    def get(self, key: str) -> str | None:
        row = self._conn.execute(
            "SELECT payload FROM pricing WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else str(row[0])

    def put(self, key: str, payload: str) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO pricing (key, payload) VALUES (?, ?)", (key, payload)
        )

    def flush(self) -> None:
        self._conn.commit()

    def close(self) -> None:
        self._conn.commit()
        self._conn.close()


class PricingCache:
    """Bounded in-memory LRU with an optional persistent spill tier.

    Args:
        max_entries: In-memory LRU bound; least-recently-used entries are
            evicted once exceeded (they remain in the spill tier if one is
            configured, so eviction never loses a persisted pricing).
        spill_path: ``None`` for memory-only, a ``*.json`` path for the JSON
            spill, anything else for sqlite.
    """

    def __init__(self, max_entries: int = 4096, spill_path: str | Path | None = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, CachedPoint] = OrderedDict()
        self._spill: _JsonSpill | _SqliteSpill | None = None
        if spill_path is not None:
            path = Path(spill_path)
            self._spill = _JsonSpill(path) if path.suffix == ".json" else _SqliteSpill(path)
        self._counters = {
            "hits": 0,
            "misses": 0,
            "memory_hits": 0,
            "persistent_hits": 0,
            "evictions": 0,
            "stores": 0,
        }

    @property
    def persistent(self) -> bool:
        """Whether a spill tier is configured."""
        return self._spill is not None

    def get(self, key: str) -> tuple[CachedPoint, str] | None:
        """Look a point key up; returns ``(entry, tier)`` or ``None``.

        ``tier`` is ``"memory"`` or ``"persistent"``; persistent hits are
        promoted into the memory tier (counting as one LRU insertion).
        """
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self._counters["hits"] += 1
                self._counters["memory_hits"] += 1
                return entry, MEMORY_TIER
            if self._spill is not None:
                payload = self._spill.get(key)
                if payload is not None:
                    entry = CachedPoint.from_payload(key, payload)
                    self._insert(entry)
                    self._counters["hits"] += 1
                    self._counters["persistent_hits"] += 1
                    return entry, PERSISTENT_TIER
            self._counters["misses"] += 1
            return None

    def put(self, entry: CachedPoint) -> None:
        """Store a freshly computed pricing in both tiers."""
        with self._lock:
            self._insert(entry)
            self._counters["stores"] += 1
            if self._spill is not None:
                self._spill.put(entry.key, entry.to_payload())

    def _insert(self, entry: CachedPoint) -> None:
        self._memory[entry.key] = entry
        self._memory.move_to_end(entry.key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self._counters["evictions"] += 1

    def flush(self) -> None:
        """Persist the spill tier (JSON write / sqlite commit)."""
        with self._lock:
            if self._spill is not None:
                self._spill.flush()

    def close(self) -> None:
        """Flush and release the spill tier; the memory tier stays usable."""
        with self._lock:
            if self._spill is not None:
                self._spill.close()
                self._spill = None

    def clear_memory(self) -> None:
        """Drop the in-memory tier only (spill survives) -- test hook."""
        with self._lock:
            self._memory.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self._counters["hits"] + self._counters["misses"]
            return self._counters["hits"] / total if total else 0.0

    def stats(self) -> dict:
        """Counter snapshot: hits/misses per tier, evictions, sizes."""
        with self._lock:
            total = self._counters["hits"] + self._counters["misses"]
            stats = dict(self._counters)
            stats["hit_rate"] = self._counters["hits"] / total if total else 0.0
            stats["memory_entries"] = len(self._memory)
            stats["persistent_entries"] = len(self._spill) if self._spill is not None else 0
            stats["persistent"] = self._spill is not None
            return stats
