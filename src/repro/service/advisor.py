"""The advisor service: scheme selection as a long-lived asyncio API.

:class:`AdvisorService` turns :class:`~repro.api.session.ExperimentSession`
into a query engine for the paper's core question -- *which compression/
aggregation scheme wins on this workload, this cluster, under this failure
scenario?* -- designed to answer it at volume:

* **Warm-cache fast path** -- a request whose candidates are all priced in
  the :class:`~repro.service.cache.PricingCache` is answered synchronously
  on the event loop, no queueing: thousands of queries per second.
* **Single-flight dedup** -- identical evaluations in flight are computed
  once; concurrent duplicates await the same future.
* **Micro-batching** -- distinct cold queries landing within the batch
  window are grouped by their axes and dispatched as *one* grid sweep per
  group, so 100 concurrent requests over one cluster cost one sweep, not
  100 sessions.
* **Backpressure** -- a bounded queue rejects at admission (429-style) once
  full, and per-request deadlines keep one fleet-scale query from starving
  everyone else.
* **Graceful drain** -- ``stop()`` stops admitting, finishes in-flight
  work, and flushes the persistent cache tier.
"""

from __future__ import annotations

import asyncio
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.api.session import ExperimentSession
from repro.service.cache import CachedPoint, PricingCache
from repro.service.errors import (
    DeadlineExceededError,
    InvalidRequestError,
    ServiceOverloadedError,
    ServiceStoppedError,
)
from repro.service.metrics import ServiceMetrics
from repro.service.models import (
    AdviseRequest,
    AdviseResponse,
    ResolvedRequest,
    rank_candidates,
    summarize_detail,
)
from repro.simulator.cluster import ClusterSpec

logger = logging.getLogger("repro.service")


@dataclass
class _Pending:
    """One queued request: its resolution, prefilled hits, and the future."""

    resolved: ResolvedRequest
    started_at: float
    future: asyncio.Future
    #: spec (as written) -> (value, tail, provenance); cache hits prefilled.
    values: dict = field(default_factory=dict)


@dataclass
class _SweepGroup:
    """Distinct cold evaluations sharing one set of sweep axes."""

    resolved: ResolvedRequest
    #: (spec as written, canonical spec, point key) per distinct cold point.
    entries: list = field(default_factory=list)


class AdvisorService:
    """Long-lived scheme-selection service over one experiment session.

    Args:
        session: Backing session; defaults to a fresh one on the paper
            testbed.  The session's sweep memo is shared with (and kept
            consistent by) its cross-thread single-flight, so the advisor's
            evaluation pool can safely share it.
        cluster: Convenience: build the default session on this cluster.
        cache: A pre-built :class:`PricingCache`; overrides the knobs below.
        cache_entries: In-memory LRU bound of the default cache.
        spill_path: Persistent tier of the default cache (``*.json`` or
            sqlite); ``None`` for memory-only.
        max_queue: Bounded request-queue depth; admission beyond it raises
            :class:`ServiceOverloadedError`.
        batch_window: Seconds the batcher waits to accumulate a micro-batch
            after the first cold request arrives (0 batches only what is
            already queued).
        max_batch: Micro-batch size bound.
        eval_workers: Threads in the evaluation pool (each runs one grouped
            sweep at a time).
        default_deadline: Fallback per-request deadline in seconds
            (``None`` = unbounded).
        log_interval: Seconds between periodic telemetry log lines on the
            ``repro.service`` logger (``None`` disables).
        serve_stale_on_overload: When the bounded queue is full, answer
            from already-cached pricing (memory or persistent tier) instead
            of raising :class:`ServiceOverloadedError` -- the response is
            flagged ``stale=True`` with the age of its oldest entry, and
            may rank only the candidates that were cached.  Requests with
            no cached candidate still get the hard 429.
    """

    def __init__(
        self,
        session: ExperimentSession | None = None,
        *,
        cluster: ClusterSpec | None = None,
        cache: PricingCache | None = None,
        cache_entries: int = 4096,
        spill_path=None,
        max_queue: int = 1024,
        batch_window: float = 0.002,
        max_batch: int = 64,
        eval_workers: int = 2,
        default_deadline: float | None = None,
        log_interval: float | None = None,
        serve_stale_on_overload: bool = False,
    ):
        if session is not None and cluster is not None:
            raise ValueError("pass either a session or a cluster, not both")
        self.session = session or ExperimentSession(cluster=cluster, record_timeline=False)
        # `is not None`, not truthiness: an empty PricingCache has len() 0.
        self.cache = (
            cache
            if cache is not None
            else PricingCache(max_entries=cache_entries, spill_path=spill_path)
        )
        self.metrics = ServiceMetrics()
        self.max_queue = max_queue
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.default_deadline = default_deadline
        self.log_interval = log_interval
        self.serve_stale_on_overload = serve_stale_on_overload
        self._pool = ThreadPoolExecutor(
            max_workers=eval_workers, thread_name_prefix="advisor-eval"
        )
        self._queue: asyncio.Queue[_Pending] | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._tasks: set[asyncio.Task] = set()
        self._batcher: asyncio.Task | None = None
        self._log_task: asyncio.Task | None = None
        self._accepting = False
        self._stopped = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "AdvisorService":
        """Start the batcher (and the telemetry logger, if configured)."""
        if self._accepting:
            return self
        if self._stopped:
            raise ServiceStoppedError("a stopped AdvisorService cannot be restarted")
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._batcher = asyncio.create_task(self._batch_loop(), name="advisor-batcher")
        if self.log_interval is not None:
            self._log_task = asyncio.create_task(self._log_loop(), name="advisor-telemetry")
        self._accepting = True
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Stop admitting requests; drain (default) or abort in-flight work.

        Draining waits for every queued request and every dispatched sweep
        to finish, then flushes the persistent cache tier, so a clean
        shutdown never loses accepted work or computed pricing.
        """
        if self._stopped:
            return
        self._accepting = False
        if self._queue is not None:
            if drain:
                await self._queue.join()
                while self._tasks:
                    await asyncio.gather(*list(self._tasks), return_exceptions=True)
            else:
                while True:
                    try:
                        item = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if not item.future.done():
                        item.future.set_exception(
                            ServiceStoppedError("service stopped before evaluation")
                        )
                    self._queue.task_done()
                for task in list(self._tasks):
                    task.cancel()
                if self._tasks:
                    await asyncio.gather(*list(self._tasks), return_exceptions=True)
        for task in (self._batcher, self._log_task):
            if task is not None:
                task.cancel()
                await asyncio.gather(task, return_exceptions=True)
        self._pool.shutdown(wait=True)
        self.cache.flush()
        self._stopped = True

    async def __aenter__(self) -> "AdvisorService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # The API
    # ------------------------------------------------------------------ #
    async def advise(
        self, request: AdviseRequest, *, deadline: float | None = None
    ) -> AdviseResponse:
        """Answer one request: candidates ranked best-first on its metric.

        Raises:
            InvalidRequestError: malformed request (bad spec/scenario/...).
            ServiceOverloadedError: the bounded queue is full.
            DeadlineExceededError: the deadline elapsed first (the underlying
                sweep keeps running and still warms the cache).
            ServiceStoppedError: the service is not accepting requests.
        """
        # Request latency is operational telemetry -- genuinely wall-clock,
        # never part of a pricing result, so determinism is unaffected.
        started = time.perf_counter()  # reprolint: disable=RPL001 - latency telemetry
        self.metrics.record_request()
        if not self._accepting or self._queue is None:
            self.metrics.record_rejected("stopped")
            raise ServiceStoppedError("the advisor service is not running")
        try:
            resolved = request.resolve(self.session.cluster)
        except InvalidRequestError:
            self.metrics.record_rejected("invalid")
            raise

        # Warm-cache fast path: every candidate already priced.
        values: dict[str, tuple[float, dict | None, str]] = {}
        complete = True
        for spec, canonical in zip(request.specs, resolved.canonical_specs):
            if spec in values:
                continue
            hit = self.cache.get(resolved.point_key(canonical))
            if hit is None:
                complete = False
            else:
                entry, tier = hit
                values[spec] = (entry.value, entry.tail, tier)
        if complete:
            latency = time.perf_counter() - started  # reprolint: disable=RPL001 - latency telemetry
            self.metrics.record_completed(latency, fast_path=True)
            return rank_candidates(
                resolved, values, latency_seconds=latency, batch_size=1
            )

        item = _Pending(
            resolved=resolved,
            started_at=started,
            future=asyncio.get_running_loop().create_future(),
            values=values,
        )
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            if self.serve_stale_on_overload:
                stale = self._stale_response(resolved, started)
                if stale is not None:
                    return stale
            self.metrics.record_rejected("queue_full")
            raise ServiceOverloadedError(
                f"request queue full ({self.max_queue} pending); retry with backoff"
            ) from None
        self.metrics.record_queue_depth(self._queue.qsize())

        timeout = deadline
        if timeout is None:
            timeout = request.deadline_seconds
        if timeout is None:
            timeout = self.default_deadline
        try:
            values, batch_size = await asyncio.wait_for(item.future, timeout)
        except asyncio.TimeoutError:
            self.metrics.record_rejected("deadline")
            raise DeadlineExceededError(
                f"advise request missed its {timeout:.3f}s deadline"
            ) from None
        except (ServiceStoppedError, ServiceOverloadedError):
            raise
        except asyncio.CancelledError:
            raise
        except Exception:
            self.metrics.record_rejected("failed")
            raise
        latency = time.perf_counter() - started  # reprolint: disable=RPL001 - latency telemetry
        self.metrics.record_completed(latency, fast_path=False)
        return rank_candidates(
            resolved, values, latency_seconds=latency, batch_size=batch_size
        )

    def _stale_response(self, resolved, started: float) -> AdviseResponse | None:
        """Best-effort ranked answer from already-cached pricing (any tier).

        Returns ``None`` when not a single candidate is cached -- the
        caller then falls through to the hard overload rejection.
        """
        values: dict[str, tuple[float, dict | None, str]] = {}
        ages: list[float] = []
        now = time.time()  # reprolint: disable=RPL001 - stale-age telemetry
        for spec, canonical in zip(
            resolved.request.specs, resolved.canonical_specs
        ):
            if spec in values:
                continue
            hit = self.cache.get(resolved.point_key(canonical))
            if hit is None:
                continue
            entry, tier = hit
            values[spec] = (entry.value, entry.tail, tier)
            if entry.created_at is not None:
                ages.append(max(0.0, now - entry.created_at))
        if not values:
            return None
        latency = time.perf_counter() - started  # reprolint: disable=RPL001 - latency telemetry
        self.metrics.record_stale_served()
        self.metrics.record_completed(latency, fast_path=True)
        return rank_candidates(
            resolved,
            values,
            latency_seconds=latency,
            batch_size=1,
            stale=True,
            stale_age_seconds=max(ages) if ages else None,
            allow_partial=True,
        )

    async def advise_many(
        self, requests, *, deadline: float | None = None
    ) -> list[AdviseResponse]:
        """Issue several requests concurrently and gather their responses."""
        return list(
            await asyncio.gather(
                *(self.advise(request, deadline=deadline) for request in requests)
            )
        )

    def snapshot(self) -> dict:
        """One coherent telemetry snapshot, cache stats included."""
        return self.metrics.snapshot(self.cache.stats())

    # ------------------------------------------------------------------ #
    # Batching & evaluation
    # ------------------------------------------------------------------ #
    async def _batch_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            batch = [item]
            try:
                if self.batch_window > 0:
                    horizon = loop.time() + self.batch_window
                    while len(batch) < self.max_batch:
                        remaining = horizon - loop.time()
                        if remaining <= 0:
                            break
                        try:
                            batch.append(
                                await asyncio.wait_for(self._queue.get(), remaining)
                            )
                        except asyncio.TimeoutError:
                            break
                while len(batch) < self.max_batch:
                    try:
                        batch.append(self._queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
            except asyncio.CancelledError:
                # Cancelled mid-window (abrupt stop): fail the requests this
                # batch already holds so their callers never hang.
                for held in batch:
                    if not held.future.done():
                        held.future.set_exception(
                            ServiceStoppedError("service stopped before evaluation")
                        )
                    self._queue.task_done()
                raise
            self.metrics.record_batch(len(batch))
            try:
                self._dispatch(batch)
            finally:
                for _ in batch:
                    self._queue.task_done()

    def _dispatch(self, batch: list[_Pending]) -> None:
        """Plan one micro-batch: dedupe, group by axes, launch sweeps."""
        groups: dict[str, _SweepGroup] = {}
        finishers: list[tuple[_Pending, dict[str, asyncio.Future]]] = []
        loop = asyncio.get_running_loop()
        for item in batch:
            if item.future.done():  # deadline already fired while queued
                continue
            needed: dict[str, asyncio.Future] = {}
            resolved = item.resolved
            for spec, canonical in zip(resolved.request.specs, resolved.canonical_specs):
                if spec in item.values or spec in needed:
                    continue
                key = resolved.point_key(canonical)
                hit = self.cache.get(key)
                if hit is not None:
                    entry, tier = hit
                    item.values[spec] = (entry.value, entry.tail, tier)
                    continue
                future = self._inflight.get(key)
                if future is None:
                    future = loop.create_future()
                    # Keep abandoned evaluations (every waiter timed out)
                    # from logging "exception was never retrieved".
                    future.add_done_callback(self._consume_exception)
                    self._inflight[key] = future
                    group = groups.get(resolved._axes_key())
                    if group is None:
                        group = _SweepGroup(resolved=resolved)
                        groups[resolved._axes_key()] = group
                    group.entries.append((spec, canonical, key))
                needed[spec] = future
            finishers.append((item, needed))

        for group in groups.values():
            self._spawn(self._evaluate_group(group))
        batch_size = len(batch)
        for item, needed in finishers:
            if needed:
                self._spawn(self._finish(item, needed, batch_size))
            elif not item.future.done():
                item.future.set_result((item.values, batch_size))

    def _spawn(self, coro) -> None:
        task = asyncio.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    @staticmethod
    def _consume_exception(future: asyncio.Future) -> None:
        if not future.cancelled():
            future.exception()

    async def _evaluate_group(self, group: _SweepGroup) -> None:
        """Price one group's cold points as a single grid sweep."""
        loop = asyncio.get_running_loop()
        try:
            points = await loop.run_in_executor(self._pool, self._run_sweep, group)
        except Exception as error:
            for _, _, key in group.entries:
                future = self._inflight.pop(key, None)
                if future is not None and not future.done():
                    future.set_exception(error)
            return
        for (_spec, canonical, key), point in zip(group.entries, points):
            cached = CachedPoint(
                key=key,
                value=float(point.value),
                canonical_spec=canonical,
                tail=summarize_detail(group.resolved.metric, point.detail),
                created_at=time.time(),  # reprolint: disable=RPL001 - stale-age telemetry
            )
            self.cache.put(cached)
            future = self._inflight.pop(key, None)
            if future is not None and not future.done():
                future.set_result(cached)

    def _run_sweep(self, group: _SweepGroup) -> list:
        """Pool-thread entry: one sweep over the group's distinct specs."""
        resolved = group.resolved
        specs = [spec for spec, _, _ in group.entries]
        self.metrics.record_evaluations(len(specs), 1)
        result = self.session.sweep(
            specs,
            workloads=resolved.workload,
            clusters=resolved.cluster,
            scenarios=[resolved.scenario] if resolved.scenario is not None else None,
            metric=resolved.metric,
            **resolved.metric_kwargs,
        )
        return list(result.points)

    async def _finish(
        self, item: _Pending, needed: dict[str, asyncio.Future], batch_size: int
    ) -> None:
        """Complete one request once its cold points resolve."""
        try:
            for spec, future in needed.items():
                cached: CachedPoint = await future
                item.values[spec] = (cached.value, cached.tail, "computed")
        except Exception as error:
            if not item.future.done():
                item.future.set_exception(error)
            return
        if not item.future.done():
            item.future.set_result((item.values, batch_size))

    async def _log_loop(self) -> None:
        while True:
            await asyncio.sleep(self.log_interval)
            logger.info(self.metrics.log_line(self.cache.stats()))
