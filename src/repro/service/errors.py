"""Error taxonomy of the advisor service.

The service fronts the simulator with queueing, batching, and deadlines, so
its failure modes are service failure modes -- not simulator ones.  Each
error maps onto the HTTP status a REST shim in front of the service would
return, which keeps the load-test harness and future transport layers
honest about what counts as a rejection versus a bug.
"""

from __future__ import annotations


class ServiceError(Exception):
    """Base class of every advisor-service error."""


class InvalidRequestError(ServiceError, ValueError):
    """A request that fails validation before it is ever queued (HTTP 400)."""


class ServiceOverloadedError(ServiceError):
    """The bounded request queue is full; the request was rejected (HTTP 429).

    Backpressure is deliberate: rejecting at admission keeps the queue wait
    of accepted requests bounded instead of letting latency grow without
    limit under overload.
    """


class DeadlineExceededError(ServiceError):
    """The request's deadline elapsed before its evaluation finished (HTTP 504).

    The response future is abandoned, but any underlying sweep keeps running
    and still populates the pricing cache -- a retry of the same request is
    expected to hit.
    """


class ServiceStoppedError(ServiceError):
    """The service is stopped (or draining) and admits no new requests (HTTP 503)."""
