"""Service telemetry: latency percentiles, queue depth, batch sizes, counters.

The advisor's operational story is modeled on O&M-metrics hotspot
localization: the service continuously exposes the distributions an
operator needs to localize a hotspot -- tail latency, queue depth, batch
efficiency, cache hit rate -- as a cheap :meth:`ServiceMetrics.snapshot`
dict and a one-line periodic log (:meth:`ServiceMetrics.log_line`).

Samples live in bounded deques (most recent window), so a service that has
answered millions of queries reports on its *current* behaviour at constant
memory.  Everything is thread-safe: the event loop, the evaluation pool,
and scraping callers share one instance.
"""

from __future__ import annotations

import threading
from collections import deque


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a sample list (0.0 on empty input)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return float(ordered[rank])


class ServiceMetrics:
    """Counters and bounded sample windows for one advisor service."""

    #: Request-terminal counter names (see :meth:`record_rejected`).
    REJECTION_KINDS = ("queue_full", "deadline", "stopped", "invalid", "failed")

    def __init__(self, window: int = 8192):
        if window < 1:
            raise ValueError("window must be >= 1")
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=window)
        self._queue_depths: deque[int] = deque(maxlen=window)
        self._batch_sizes: deque[int] = deque(maxlen=window)
        self._counts = {
            "requests": 0,
            "completed": 0,
            "fast_path": 0,
            "batched": 0,
            "stale_served": 0,
            "sweep_evaluations": 0,
            "sweeps_dispatched": 0,
        }
        self._counts.update({f"rejected_{kind}": 0 for kind in self.REJECTION_KINDS})

    # ------------------------------------------------------------------ #
    # Recording (called from the event loop and from pool threads)
    # ------------------------------------------------------------------ #
    def record_request(self) -> None:
        with self._lock:
            self._counts["requests"] += 1

    def record_completed(self, latency_seconds: float, *, fast_path: bool) -> None:
        with self._lock:
            self._counts["completed"] += 1
            self._counts["fast_path" if fast_path else "batched"] += 1
            self._latencies.append(float(latency_seconds))

    def record_stale_served(self) -> None:
        """Count one overload answered from cached pricing instead of a 429."""
        with self._lock:
            self._counts["stale_served"] += 1

    def record_rejected(self, kind: str) -> None:
        if kind not in self.REJECTION_KINDS:
            raise ValueError(f"unknown rejection kind {kind!r}")
        with self._lock:
            self._counts[f"rejected_{kind}"] += 1

    def record_queue_depth(self, depth: int) -> None:
        with self._lock:
            self._queue_depths.append(int(depth))

    def record_batch(self, size: int) -> None:
        with self._lock:
            self._batch_sizes.append(int(size))

    def record_evaluations(self, num_points: int, num_sweeps: int = 1) -> None:
        """Count underlying work: distinct points priced, sweeps dispatched."""
        with self._lock:
            self._counts["sweep_evaluations"] += int(num_points)
            self._counts["sweeps_dispatched"] += int(num_sweeps)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @property
    def sweep_evaluations(self) -> int:
        """Distinct grid points actually priced by the backing session."""
        with self._lock:
            return self._counts["sweep_evaluations"]

    @property
    def sweeps_dispatched(self) -> int:
        """Micro-batched sweep calls dispatched to the evaluation pool."""
        with self._lock:
            return self._counts["sweeps_dispatched"]

    def snapshot(self, cache_stats: dict | None = None) -> dict:
        """One coherent telemetry snapshot (optionally merging cache stats).

        Keys: every counter, ``latency`` (p50/p95/p99/max seconds over the
        sample window), ``queue`` (current-window depth distribution),
        ``batch`` (micro-batch size distribution), and -- when given --
        ``cache`` (the :meth:`PricingCache.stats` dict).
        """
        with self._lock:
            latencies = list(self._latencies)
            depths = [float(depth) for depth in self._queue_depths]
            batches = [float(size) for size in self._batch_sizes]
            counts = dict(self._counts)
        rejected = sum(counts[f"rejected_{kind}"] for kind in self.REJECTION_KINDS)
        snapshot = {
            **counts,
            "rejected": rejected,
            "latency": {
                "count": len(latencies),
                "p50_seconds": percentile(latencies, 0.50),
                "p95_seconds": percentile(latencies, 0.95),
                "p99_seconds": percentile(latencies, 0.99),
                "max_seconds": max(latencies) if latencies else 0.0,
            },
            "queue": {
                "p50_depth": percentile(depths, 0.50),
                "p99_depth": percentile(depths, 0.99),
                "max_depth": max(depths) if depths else 0.0,
            },
            "batch": {
                "count": len(batches),
                "mean_size": sum(batches) / len(batches) if batches else 0.0,
                "p99_size": percentile(batches, 0.99),
                "max_size": max(batches) if batches else 0.0,
            },
        }
        if cache_stats is not None:
            snapshot["cache"] = dict(cache_stats)
        return snapshot

    def log_line(self, cache_stats: dict | None = None) -> str:
        """The periodic operator log line: the snapshot's headline numbers."""
        snap = self.snapshot(cache_stats)
        line = (
            "advisor: {requests} req ({completed} ok, {rejected} rejected, "
            "{fast_path} fast-path) "
            "p50={p50:.4f}s p99={p99:.4f}s "
            "queue_p99={queue_p99:.0f} batch_mean={batch_mean:.1f} "
            "evals={sweep_evaluations} sweeps={sweeps_dispatched}"
        ).format(
            requests=snap["requests"],
            completed=snap["completed"],
            rejected=snap["rejected"],
            fast_path=snap["fast_path"],
            p50=snap["latency"]["p50_seconds"],
            p99=snap["latency"]["p99_seconds"],
            queue_p99=snap["queue"]["p99_depth"],
            batch_mean=snap["batch"]["mean_size"],
            sweep_evaluations=snap["sweep_evaluations"],
            sweeps_dispatched=snap["sweeps_dispatched"],
        )
        if cache_stats is not None:
            line += f" cache_hit_rate={snap['cache']['hit_rate']:.2f}"
        return line
