"""The simulator's side of the differential comparison.

:func:`simulate_trace` runs a scheme *monolithically* -- the ordinary
simulated path, all workers' gradients in one process -- over the same trace
steps the harness executes, with a :class:`RecordingBackend` that logs, per
collective call, exactly how many payload bits the simulator charges each
worker (``size * wire_bits_per_value``, the quantity every cost-model call
prices).  The harness's measured uplink must equal this accounting bit for
bit; the validation family and ``tests/bridge`` enforce it.

The simulated run uses the legacy kernel backend: that is the per-worker
reference path whose collective calls carry real per-worker payloads, i.e.
the same protocol the harness distributes.  (The batched backend computes
identical results and identical pricing -- held by
``tests/property/test_backend_equivalence.py`` -- but fuses the workers into
one matrix, so it has no per-worker wire traffic to record.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bridge.trace import GradientTrace
from repro.collectives.api import Collective, CollectiveBackend
from repro.collectives.ops import ReduceOp
from repro.compression.base import SimContext
from repro.compression.kernels import KernelBackend
from repro.compression.registry import make_scheme
from repro.core.metrics import vnmse
from repro.simulator.cluster import ClusterSpec, paper_testbed
from repro.simulator.kernel_cost import KernelCostModel


@dataclass
class RecordedCall:
    """The simulator's traffic accounting for one collective call."""

    kind: str
    per_worker_bits: tuple[int, ...]


class RecordingBackend(CollectiveBackend):
    """A collective backend that logs per-worker payload bits per call.

    The recorded quantity is the *uplink contribution* of each worker: the
    bits its payload occupies at the declared wire width -- exactly what
    :class:`~repro.bridge.actors.TransportBackend` measures from the real
    encoded bytes on the harness side.
    """

    def __init__(self, cluster: ClusterSpec | None = None):
        super().__init__(cluster)
        self.calls: list[RecordedCall] = []

    def _log(self, kind: str, per_worker_bits: list[float]) -> None:
        bits = []
        for value in per_worker_bits:
            rounded = int(round(value))
            if abs(value - rounded) > 1e-9:
                raise ValueError(
                    f"{kind} payload of {value} bits is not a whole number; "
                    "the wire cannot carry fractional bits"
                )
            bits.append(rounded)
        self.calls.append(RecordedCall(kind=kind, per_worker_bits=tuple(bits)))

    def allreduce(
        self,
        worker_vectors: list[np.ndarray],
        *,
        wire_bits_per_value: float,
        op: ReduceOp | None = None,
        collective: Collective = Collective.RING_ALLREDUCE,
    ):
        result = super().allreduce(
            worker_vectors,
            wire_bits_per_value=wire_bits_per_value,
            op=op,
            collective=collective,
        )
        self._log(
            "allreduce",
            [vector.size * wire_bits_per_value for vector in worker_vectors],
        )
        return result

    def allgather(
        self,
        worker_payloads: list[np.ndarray],
        *,
        wire_bits_per_value: float,
    ):
        result = super().allgather(
            worker_payloads, wire_bits_per_value=wire_bits_per_value
        )
        self._log(
            "allgather",
            [payload.size * wire_bits_per_value for payload in worker_payloads],
        )
        return result

    def allgather_sections(
        self,
        worker_sections,
        *,
        wire_bits_per_section,
    ):
        result = super().allgather_sections(
            worker_sections, wire_bits_per_section=wire_bits_per_section
        )
        self._log(
            "allgather",
            [
                sum(
                    section.size * bits
                    for section, bits in zip(sections, wire_bits_per_section)
                )
                for sections in worker_sections
            ],
        )
        return result


@dataclass(frozen=True)
class SimulatedRound:
    """The simulator's prediction for one trace step."""

    index: int
    vnmse: float
    mean_estimate: np.ndarray
    per_worker_bits: tuple[int, ...]
    collective_calls: int
    bits_per_coordinate: float
    communication_seconds: float
    compression_seconds: float


@dataclass(frozen=True)
class SimulatedRun:
    """A monolithic simulated pass over a trace, with traffic accounting."""

    spec: str
    rounds: tuple[SimulatedRound, ...] = field(default_factory=tuple)

    @property
    def mean_vnmse(self) -> float:
        return float(np.mean([round_.vnmse for round_ in self.rounds]))

    @property
    def total_bits(self) -> int:
        return sum(sum(round_.per_worker_bits) for round_ in self.rounds)

    @property
    def total_seconds(self) -> float:
        return float(
            sum(
                round_.communication_seconds + round_.compression_seconds
                for round_ in self.rounds
            )
        )


def simulate_trace(
    spec: str,
    trace: GradientTrace,
    *,
    cluster: ClusterSpec | None = None,
    seed: int = 0,
) -> SimulatedRun:
    """Simulate ``spec`` over ``trace`` and record its traffic accounting.

    Same trace, same seed, same (legacy) kernel path as the harness -- the
    only things the harness adds are the transport and the wire encodings,
    which is precisely the gap the validation report quantifies.
    """
    cluster = cluster or paper_testbed()
    if cluster.world_size != trace.num_workers:
        raise ValueError(
            f"cluster world size {cluster.world_size} != trace workers "
            f"{trace.num_workers}"
        )
    backend = RecordingBackend(cluster)
    ctx = SimContext(
        backend=backend,
        kernels=KernelCostModel(gpu=cluster.gpu),
        rng=np.random.default_rng(seed),
        kernel_backend=KernelBackend.LEGACY,
    )
    scheme = make_scheme(spec)
    world = cluster.world_size

    rounds = []
    for step in trace.steps:
        calls_before = len(backend.calls)
        result = scheme.aggregate(step.flats(), ctx)
        step_calls = backend.calls[calls_before:]
        per_worker = tuple(
            sum(call.per_worker_bits[rank] for call in step_calls)
            for rank in range(world)
        )
        mean = np.asarray(result.mean_estimate, dtype=np.float32)
        rounds.append(
            SimulatedRound(
                index=step.index,
                vnmse=vnmse(mean, step.true_mean()),
                mean_estimate=mean,
                per_worker_bits=per_worker,
                collective_calls=len(step_calls),
                bits_per_coordinate=result.bits_per_coordinate,
                communication_seconds=result.communication_seconds,
                compression_seconds=result.compression_seconds,
            )
        )
    return SimulatedRun(spec=spec, rounds=tuple(rounds))
