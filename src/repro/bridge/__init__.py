"""Real-tensor bridge: run registered schemes on actual gradient tensors.

Everything else in the repo *prices* schemes on a simulated cluster.  This
package closes the loop between those predictions and reality:

* :mod:`repro.bridge.trace` -- a versioned on-disk gradient-trace format
  (npz shards plus a JSON manifest) with seed-deterministic round-trips;
* :mod:`repro.bridge.recorders` -- a realistic synthetic trace recorder
  (layer-structured, heavy-tailed, step-correlated) and an optional torch
  autograd-hook recorder that degrades gracefully when torch is absent;
* :mod:`repro.bridge.wire` -- bit-exact wire codecs that turn collective
  payloads into real bytes at the simulator's declared wire widths;
* :mod:`repro.bridge.transport` -- in-process and multiprocess message
  channels between workers and the aggregation server;
* :mod:`repro.bridge.actors` -- the :class:`GradientWorker` /
  :class:`AggregationServer` execution harness that actually runs each
  scheme's compress -> transmit -> aggregate -> decompress loop over trace
  steps, measuring real VNMSE, payload bytes, and wall-clock per round;
* :mod:`repro.bridge.prediction` -- the matched simulated run (same trace,
  same seed, per-collective traffic recording) that the harness's
  measurements are differentially validated against.

The validation experiment family built on top of this package lives in
:mod:`repro.experiments.validation`.
"""

from repro.bridge.actors import (
    AggregationServer,
    BridgeProtocolError,
    GradientWorker,
    HarnessResult,
    HarnessRound,
    TransportBackend,
    run_harness,
)
from repro.bridge.prediction import RecordingBackend, SimulatedRun, simulate_trace
from repro.bridge.recorders import (
    TorchUnavailableError,
    record_torch_gradients,
    synthetic_trace,
    torch_available,
)
from repro.bridge.trace import (
    GradientTrace,
    LayerSpec,
    TraceFormatError,
    TraceStep,
    load_trace,
    save_trace,
)
from repro.bridge.transport import BridgeTimeoutError
from repro.bridge.wire import EncodedSection, WireFormatError, decode_section, encode_section

__all__ = [
    "AggregationServer",
    "BridgeProtocolError",
    "BridgeTimeoutError",
    "EncodedSection",
    "GradientTrace",
    "GradientWorker",
    "HarnessResult",
    "HarnessRound",
    "LayerSpec",
    "RecordingBackend",
    "SimulatedRun",
    "TorchUnavailableError",
    "TraceFormatError",
    "TraceStep",
    "TransportBackend",
    "WireFormatError",
    "decode_section",
    "encode_section",
    "load_trace",
    "record_torch_gradients",
    "run_harness",
    "save_trace",
    "simulate_trace",
    "synthetic_trace",
    "torch_available",
]
