"""Gradient-trace recorders: realistic synthetic traces, optional torch.

Two sources feed the bridge with traces:

* :func:`synthetic_trace` generates layer-structured gradients with the
  statistical features the simulator's pricing assumptions care about --
  heavy-tailed per-layer magnitudes (a log-normal scale per layer, like the
  wide dynamic range across embedding / attention / norm layers), spatial
  correlation within a layer, a shared low-rank signal all workers agree on,
  per-worker noise, and step-to-step momentum (an AR(1) process, since real
  gradients decorrelate slowly across adjacent steps).  Same seed, same
  trace, bit for bit.
* :func:`record_torch_gradients` hooks a live torch training loop through
  ``Tensor.register_hook`` and records the per-parameter gradients of each
  backward pass.  torch is an optional dependency: when it is absent the
  recorder raises :class:`TorchUnavailableError` with a clear message, and
  :func:`torch_available` lets callers branch without try/except.
"""

from __future__ import annotations

import numpy as np

from repro.bridge.trace import GradientTrace, LayerSpec, TraceStep

#: Default layer schema of the synthetic recorder: a transformer-block-like
#: mix of large matrices, small vectors, and odd sizes (to exercise padding).
DEFAULT_LAYERS = (
    ("embed.weight", (50, 32)),
    ("attn.qkv.weight", (96, 32)),
    ("attn.out.bias", (32,)),
    ("mlp.up.weight", (61, 17)),
    ("norm.scale", (32,)),
)


class TorchUnavailableError(RuntimeError):
    """torch is not installed; the autograd recorder cannot run."""


def torch_available() -> bool:
    """Whether the optional torch dependency is importable."""
    try:
        import torch  # noqa: F401
    except ImportError:
        return False
    return True


def synthetic_trace(
    *,
    num_steps: int = 3,
    num_workers: int = 4,
    layers: tuple[tuple[str, tuple[int, ...]], ...] = DEFAULT_LAYERS,
    seed: int = 0,
    momentum: float = 0.8,
    worker_noise: float = 0.5,
    layer_scale_sigma: float = 1.2,
    metadata: dict | None = None,
) -> GradientTrace:
    """A deterministic synthetic gradient trace with realistic structure.

    Args:
        num_steps: Training steps to record.
        num_workers: Workers per step.
        layers: ``(name, shape)`` pairs declaring the layer schema.
        seed: Seeds everything; equal seeds give bit-identical traces.
        momentum: AR(1) coefficient of the shared signal across steps
            (0 = independent steps, close to 1 = slowly drifting gradients).
        worker_noise: Scale of the per-worker deviation from the shared
            signal (data-parallel workers see different minibatches).
        layer_scale_sigma: Sigma of the log-normal per-layer magnitude,
            producing the heavy-tailed cross-layer dynamic range.
        metadata: Extra manifest metadata recorded alongside the trace.
    """
    if num_steps < 1:
        raise ValueError("num_steps must be >= 1")
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if not 0.0 <= momentum < 1.0:
        raise ValueError("momentum must be in [0, 1)")
    specs = tuple(
        LayerSpec(name=name, shape=tuple(shape), dtype="float32")
        for name, shape in layers
    )
    rng = np.random.default_rng(seed)
    total = sum(spec.size for spec in specs)

    # Heavy-tailed per-layer magnitudes, constant across the run (a layer's
    # scale is an architectural property, not a per-step draw).
    layer_scales = np.exp(layer_scale_sigma * rng.standard_normal(len(specs)))
    scale_vector = np.concatenate(
        [np.full(spec.size, scale) for spec, scale in zip(specs, layer_scales)]
    )
    # Spatial correlation within layers: smooth the white noise with a short
    # moving average so neighbouring coordinates co-vary (as convolution and
    # attention gradients do).
    kernel = np.array([0.25, 0.5, 0.25])

    def smooth(values: np.ndarray) -> np.ndarray:
        return np.convolve(values, kernel, mode="same")

    shared = smooth(rng.standard_normal(total))
    fresh_scale = float(np.sqrt(1.0 - momentum**2))

    steps = []
    for step_index in range(num_steps):
        if step_index > 0:
            shared = momentum * shared + fresh_scale * smooth(
                rng.standard_normal(total)
            )
        workers = []
        for _ in range(num_workers):
            noise = worker_noise * smooth(rng.standard_normal(total))
            flat = (scale_vector * (shared + noise)).astype(np.float32)
            workers.append(_split_layers(flat, specs))
        steps.append(TraceStep(index=step_index, gradients=tuple(workers)))

    info = {
        "recorder": "synthetic",
        "seed": seed,
        "momentum": momentum,
        "worker_noise": worker_noise,
        "layer_scale_sigma": layer_scale_sigma,
    }
    if metadata:
        info.update(metadata)
    return GradientTrace(layers=specs, steps=steps, metadata=info)


def _split_layers(
    flat: np.ndarray, specs: tuple[LayerSpec, ...]
) -> tuple[np.ndarray, ...]:
    arrays = []
    offset = 0
    for spec in specs:
        arrays.append(flat[offset : offset + spec.size].reshape(spec.shape))
        offset += spec.size
    return tuple(arrays)


def record_torch_gradients(
    model,
    step_fn,
    *,
    num_steps: int,
    num_workers: int = 1,
    metadata: dict | None = None,
) -> GradientTrace:
    """Record a torch model's gradients over ``num_steps`` backward passes.

    Autograd hooks (``Tensor.register_hook``) capture each parameter's
    gradient as it is produced; ``step_fn(model, step_index, worker_rank)``
    must run one forward+backward pass (the recorder neither zeroes grads
    nor steps the optimizer -- the training loop stays in charge).  With
    ``num_workers > 1`` the step function is invoked once per (step, rank)
    pair, which emulates data-parallel workers by feeding different
    minibatches.

    Raises:
        TorchUnavailableError: torch is not installed.  The bridge is fully
            usable without torch via :func:`synthetic_trace`; this recorder
            is the opt-in path for real models.
    """
    try:
        import torch
    except ImportError as error:
        raise TorchUnavailableError(
            "record_torch_gradients needs the optional torch dependency; "
            "install torch, or use repro.bridge.synthetic_trace() for a "
            "torch-free trace"
        ) from error

    named_params = [
        (name, param) for name, param in model.named_parameters() if param.requires_grad
    ]
    if not named_params:
        raise ValueError("model has no trainable parameters to record")
    specs = tuple(
        LayerSpec(name=name, shape=tuple(param.shape), dtype="float32")
        for name, param in named_params
    )

    captured: dict[str, np.ndarray] = {}

    def make_hook(name: str):
        def hook(grad):
            captured[name] = grad.detach().cpu().to(torch.float32).numpy().copy()
            return grad

        return hook

    handles = [param.register_hook(make_hook(name)) for name, param in named_params]
    try:
        steps = []
        for step_index in range(num_steps):
            workers = []
            for rank in range(num_workers):
                captured.clear()
                step_fn(model, step_index, rank)
                missing = [name for name, _ in named_params if name not in captured]
                if missing:
                    raise ValueError(
                        f"step {step_index} worker {rank} produced no gradient "
                        f"for {missing[:3]}; did step_fn run backward()?"
                    )
                workers.append(tuple(captured[name] for name, _ in named_params))
            steps.append(TraceStep(index=step_index, gradients=tuple(workers)))
    finally:
        for handle in handles:
            handle.remove()

    info = {"recorder": "torch-autograd-hook"}
    if metadata:
        info.update(metadata)
    return GradientTrace(layers=specs, steps=steps, metadata=info)
