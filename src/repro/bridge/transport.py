"""Worker <-> server message channels: in-process queues or OS pipes.

The harness speaks one tiny protocol (python dict messages whose payload
fields are the :class:`~repro.bridge.wire.EncodedSection` bytes) over a
duplex channel per worker.  Two concrete transports:

* :func:`inprocess_channel` -- a pair of ``queue.Queue`` endpoints; workers
  run as threads of the driver process.  Fast, no serialization, the default
  for tests and the CI smoke pass.
* :func:`multiprocess_channel` -- a ``multiprocessing.Pipe``; workers run as
  real OS processes and every message (control header + payload bytes)
  crosses a pickled pipe, exactly as a socket transport would see it.

Both endpoints implement ``send(obj)`` / ``recv(timeout)``; a receive that
outlives its timeout raises :class:`BridgeTimeoutError`, the harness's
loud-failure mode for a deadlocked or crashed peer.
"""

from __future__ import annotations

import multiprocessing
import queue


class BridgeTimeoutError(RuntimeError):
    """A harness endpoint waited longer than its timeout for a message."""


class QueueEndpoint:
    """One side of an in-process duplex channel built from two queues."""

    def __init__(self, inbox: queue.Queue, outbox: queue.Queue):
        self._inbox = inbox
        self._outbox = outbox

    def send(self, message) -> None:
        self._outbox.put(message)

    def recv(self, timeout: float):
        try:
            return self._inbox.get(timeout=timeout)
        except queue.Empty as error:
            raise BridgeTimeoutError(
                f"no message within {timeout:g}s on in-process channel"
            ) from error


class PipeEndpoint:
    """One side of a multiprocess duplex channel over an OS pipe."""

    def __init__(self, connection):
        self._connection = connection

    def send(self, message) -> None:
        self._connection.send(message)

    def recv(self, timeout: float):
        if not self._connection.poll(timeout):
            raise BridgeTimeoutError(
                f"no message within {timeout:g}s on multiprocess channel"
            )
        try:
            return self._connection.recv()
        except EOFError as error:
            raise BridgeTimeoutError(
                "peer closed the multiprocess channel (worker crashed?)"
            ) from error

    def close(self) -> None:
        self._connection.close()


def inprocess_channel() -> tuple[QueueEndpoint, QueueEndpoint]:
    """A duplex in-process channel: returns (worker_end, server_end)."""
    to_server: queue.Queue = queue.Queue()
    to_worker: queue.Queue = queue.Queue()
    worker_end = QueueEndpoint(inbox=to_worker, outbox=to_server)
    server_end = QueueEndpoint(inbox=to_server, outbox=to_worker)
    return worker_end, server_end


def multiprocess_channel() -> tuple[PipeEndpoint, PipeEndpoint]:
    """A duplex multiprocess channel: returns (worker_end, server_end)."""
    worker_conn, server_conn = multiprocessing.Pipe(duplex=True)
    return PipeEndpoint(worker_conn), PipeEndpoint(server_conn)
