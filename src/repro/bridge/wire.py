"""Bit-exact wire codecs: collective payloads as real bytes.

The simulator prices every collective at a declared *wire width* -- 16 bits
for an FP16 payload, ``q`` bits for q-bit quantization levels, 32 bits for a
norm scalar.  This module is where those declarations stop being bookkeeping
and become actual encodings:

* a 16-bit width encodes IEEE float16;
* a 32-bit width encodes IEEE float32 (or int32 for integer payloads such as
  TopK indices);
* a 64-bit width encodes the array raw (used for server downlinks);
* any other integer width requires an *integral-valued* payload and packs
  each value into exactly ``w`` bits (offset-binary two's complement), which
  is how q-bit quantization levels and signSGD votes travel.

``encode_section`` therefore refuses payloads the declared width cannot
faithfully carry (fractional values at a 5-bit width, levels outside the
signed w-bit range) by raising :class:`WireFormatError` -- if a scheme's
traffic accounting cannot be realised as bytes, the differential validation
suite should fail loudly rather than fudge the byte count.

The *logical* payload size of a section is ``size * wire_bits`` bits, matching
the simulator's ``payload_bits`` accounting exactly; the byte buffer is that
rounded up to whole bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class WireFormatError(ValueError):
    """A payload cannot be faithfully encoded at its declared wire width."""


@dataclass(frozen=True)
class EncodedSection:
    """One wire-encoded payload section.

    Attributes:
        payload: The raw bytes on the wire.
        shape: Original array shape (decode restores it).
        dtype: Original array dtype name (decode restores it).
        wire_bits: Declared bits per value.
        encoding: Concrete codec used (``f16``/``f32``/``f64``/``i32``/
            ``i64``/``pack``).
        bits: Logical payload size in bits: ``size * wire_bits``.
    """

    payload: bytes
    shape: tuple[int, ...]
    dtype: str
    wire_bits: float
    encoding: str
    bits: int

    @property
    def nbytes(self) -> int:
        """Actual buffer length on the wire."""
        return len(self.payload)


def encode_section(array: np.ndarray, wire_bits: float) -> EncodedSection:
    """Encode ``array`` at ``wire_bits`` bits per value.

    Raises:
        WireFormatError: The width is not realisable for this payload.
    """
    array = np.asarray(array)
    size = array.size
    logical_bits = _logical_bits(size, wire_bits)

    def section(payload: bytes, encoding: str) -> EncodedSection:
        expected = -(-logical_bits // 8)  # ceil division
        if len(payload) != expected:
            raise WireFormatError(
                f"{encoding} encoding produced {len(payload)} bytes for a "
                f"{logical_bits}-bit payload (expected {expected})"
            )
        return EncodedSection(
            payload=payload,
            shape=tuple(array.shape),
            dtype=array.dtype.name,
            wire_bits=float(wire_bits),
            encoding=encoding,
            bits=logical_bits,
        )

    integral_dtype = np.issubdtype(array.dtype, np.integer)
    if wire_bits == 16.0 and not integral_dtype:
        return section(np.ascontiguousarray(array, dtype=np.float16).tobytes(), "f16")
    if wire_bits == 32.0:
        if integral_dtype:
            _check_int_range(array, 32)
            return section(
                np.ascontiguousarray(array, dtype=np.int32).tobytes(), "i32"
            )
        return section(np.ascontiguousarray(array, dtype=np.float32).tobytes(), "f32")
    if wire_bits == 64.0:
        if integral_dtype:
            return section(
                np.ascontiguousarray(array, dtype=np.int64).tobytes(), "i64"
            )
        return section(np.ascontiguousarray(array, dtype=np.float64).tobytes(), "f64")

    # Narrow widths: the payload must be integral-valued (quantization
    # levels, sign votes) and fit the signed w-bit range.
    width = int(wire_bits)
    if width != wire_bits or width < 2:
        raise WireFormatError(
            f"wire width {wire_bits} bits is not encodable: only 16/32/64-bit "
            "float widths and integer widths >= 2 have codecs"
        )
    values = array.reshape(-1)
    if not integral_dtype:
        rounded = np.rint(values)
        if not np.array_equal(rounded, values):
            raise WireFormatError(
                f"payload declared at {width} bits/value holds non-integral "
                "values; only integral payloads can be bit-packed"
            )
        values = rounded
    values = values.astype(np.int64)
    _check_int_range(values, width)
    return section(_pack_ints(values, width), "pack")


def decode_section(section: EncodedSection) -> np.ndarray:
    """Decode a section back to its original shape and dtype.

    Float16/float32 wire formats decode through the wire precision, so the
    returned values carry exactly the rounding a real link imposes.
    """
    shape = section.shape
    dtype = np.dtype(section.dtype)
    size = int(np.prod(shape)) if shape else 1
    if section.encoding == "f16":
        values = np.frombuffer(section.payload, dtype=np.float16, count=size)
    elif section.encoding == "f32":
        values = np.frombuffer(section.payload, dtype=np.float32, count=size)
    elif section.encoding == "f64":
        values = np.frombuffer(section.payload, dtype=np.float64, count=size)
    elif section.encoding == "i32":
        values = np.frombuffer(section.payload, dtype=np.int32, count=size)
    elif section.encoding == "i64":
        values = np.frombuffer(section.payload, dtype=np.int64, count=size)
    elif section.encoding == "pack":
        values = _unpack_ints(section.payload, size, int(section.wire_bits))
    else:
        raise WireFormatError(f"unknown wire encoding {section.encoding!r}")
    return values.astype(dtype).reshape(shape)


def _logical_bits(size: int, wire_bits: float) -> int:
    bits = size * wire_bits
    rounded = int(round(bits))
    if abs(bits - rounded) > 1e-9:
        raise WireFormatError(
            f"payload of {size} values at {wire_bits} bits/value is not a "
            "whole number of bits"
        )
    return rounded


def _check_int_range(values: np.ndarray, width: int) -> None:
    if values.size == 0:
        return
    limit = (1 << (width - 1)) - 1
    top = int(np.max(values))
    bottom = int(np.min(values))
    if top > limit or bottom < -limit - 1:
        raise WireFormatError(
            f"integer payload range [{bottom}, {top}] exceeds the signed "
            f"{width}-bit wire range [{-limit - 1}, {limit}]"
        )


def _pack_ints(values: np.ndarray, width: int) -> bytes:
    """Pack int64 values into ``width``-bit offset-binary fields."""
    offset = (values + (1 << (width - 1))).astype(np.uint64)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((offset[:, None] >> shifts) & np.uint64(1)).astype(np.uint8).reshape(-1)
    return np.packbits(bits).tobytes()


def _unpack_ints(payload: bytes, size: int, width: int) -> np.ndarray:
    """Inverse of :func:`_pack_ints`."""
    total = size * width
    raw = np.frombuffer(payload, dtype=np.uint8)
    bits = np.unpackbits(raw, count=total)
    weights = (np.uint64(1) << np.arange(width - 1, -1, -1, dtype=np.uint64)).astype(
        np.int64
    )
    fields = bits.reshape(size, width).astype(np.int64) @ weights
    return fields - (1 << (width - 1))
