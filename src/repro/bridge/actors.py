"""The execution harness: GradientWorker / AggregationServer actors.

This is where a registered scheme stops being simulated and actually *runs*.
Every worker executes the scheme's own legacy aggregation code unmodified --
compress, hand payloads to the collective, decompress what comes back -- but
the collective backend underneath it is a :class:`TransportBackend` that
wire-encodes the worker's contribution into real bytes, ships it to an
:class:`AggregationServer` over a transport channel, and returns the reduced
payload the server sends back.  The server replays the exact per-hop fold
order of the simulated collectives (ring / tree / hierarchical), so the only
differences between a harness run and a monolithic simulation are the ones a
real deployment has: wire-precision rounding and actual bytes on a channel.

Execution is SPMD: worker ``i`` calls ``scheme.aggregate`` on a gradient
list that is zero everywhere except its own rank.  Registered schemes derive
their mean estimate exclusively from collective results (enforced by the
differential suite in ``tests/bridge/``), so the placeholder rows never leak
into any output -- and every worker must finish the round holding the
bit-identical mean estimate, which the harness asserts.

Measured per round, per worker: real uplink payload bits/bytes (compared
*exactly* against the simulator's traffic accounting), the scheme's VNMSE on
the trace's true mean, wall-clock seconds, and the simulated seconds the
priced cost model attributes to the same round.
"""

from __future__ import annotations

import multiprocessing
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.bridge.trace import GradientTrace, load_trace, save_trace
from repro.bridge.transport import (
    BridgeTimeoutError,
    inprocess_channel,
    multiprocess_channel,
)
from repro.bridge.wire import EncodedSection, decode_section, encode_section
from repro.collectives.api import (
    Collective,
    CollectiveBackend,
    CollectiveResult,
    SectionedGatherResult,
)
from repro.collectives.ops import ReduceOp, SumOp
from repro.compression.base import SimContext
from repro.compression.kernels import KernelBackend
from repro.compression.registry import make_scheme
from repro.core.metrics import vnmse
from repro.simulator.cluster import ClusterSpec, paper_testbed
from repro.simulator.kernel_cost import KernelCostModel

#: Default per-message timeout of harness channels.
DEFAULT_TIMEOUT = 60.0


class BridgeProtocolError(RuntimeError):
    """Workers sent inconsistent or unexpected messages to the server."""


@dataclass
class CallRecord:
    """Uplink accounting for one collective call made by one worker."""

    kind: str
    bits: int
    nbytes: int


class TransportBackend(CollectiveBackend):
    """A collective backend whose payloads cross a real transport channel.

    Drop-in replacement for :class:`CollectiveBackend` inside a
    :class:`~repro.compression.base.SimContext`: the functional result comes
    from the :class:`AggregationServer` at the other end of ``endpoint``,
    while the priced :class:`CollectiveCost` is computed by the same cost
    model the simulator uses, so ``ctx.add_time`` keeps working.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        rank: int,
        endpoint,
        *,
        timeout: float = DEFAULT_TIMEOUT,
    ):
        super().__init__(cluster)
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} outside world of {self.world_size}")
        self.rank = rank
        self.endpoint = endpoint
        self.timeout = timeout
        self.sequence = 0
        self.calls: list[CallRecord] = []

    # -------------------------------------------------------------- #
    # Accounting
    # -------------------------------------------------------------- #
    @property
    def uplink_bits(self) -> int:
        """Logical bits this worker has put on the wire so far."""
        return sum(call.bits for call in self.calls)

    @property
    def uplink_bytes(self) -> int:
        """Actual payload bytes this worker has put on the wire so far."""
        return sum(call.nbytes for call in self.calls)

    def _record(self, kind: str, sections: list[EncodedSection]) -> None:
        self.calls.append(
            CallRecord(
                kind=kind,
                bits=sum(section.bits for section in sections),
                nbytes=sum(section.nbytes for section in sections),
            )
        )

    def _exchange(self, message: dict) -> dict:
        message["seq"] = self.sequence
        message["rank"] = self.rank
        self.sequence += 1
        self.endpoint.send(message)
        reply = self.endpoint.recv(self.timeout)
        if reply.get("kind") == "error":
            raise BridgeProtocolError(f"server reported: {reply.get('error')}")
        if reply.get("seq") != message["seq"]:
            raise BridgeProtocolError(
                f"reply out of order: sent seq {message['seq']}, "
                f"got {reply.get('seq')}"
            )
        return reply

    # -------------------------------------------------------------- #
    # Collectives
    # -------------------------------------------------------------- #
    def allreduce(
        self,
        worker_vectors: list[np.ndarray],
        *,
        wire_bits_per_value: float,
        op: ReduceOp | None = None,
        collective: Collective = Collective.RING_ALLREDUCE,
    ) -> CollectiveResult:
        self._check_world(worker_vectors)
        op = op or SumOp()
        own = np.asarray(worker_vectors[self.rank])
        section = encode_section(own, wire_bits_per_value)
        self._record("allreduce", [section])
        reply = self._exchange(
            {
                "kind": "allreduce",
                "op": op,
                "collective": collective.value,
                "section": section,
            }
        )
        aggregate = decode_section(reply["section"])
        cost = self.allreduce_cost(own.size * wire_bits_per_value, collective)
        return CollectiveResult(aggregate=aggregate, gathered=None, cost=cost)

    def allreduce_matrix(
        self,
        matrix: np.ndarray,
        *,
        wire_bits_per_value: float,
        op: ReduceOp | None = None,
        collective: Collective = Collective.RING_ALLREDUCE,
    ) -> CollectiveResult:
        # The batched entry point exists only for API parity; harness
        # contexts run the legacy kernels, which call allreduce().
        return self.allreduce(
            [np.asarray(row) for row in matrix],
            wire_bits_per_value=wire_bits_per_value,
            op=op,
            collective=collective,
        )

    def allgather(
        self,
        worker_payloads: list[np.ndarray],
        *,
        wire_bits_per_value: float,
    ) -> CollectiveResult:
        if len(worker_payloads) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} payloads, got {len(worker_payloads)}"
            )
        own = np.asarray(worker_payloads[self.rank])
        section = encode_section(own, wire_bits_per_value)
        self._record("allgather", [section])
        reply = self._exchange({"kind": "allgather", "sections": [section]})
        per_worker: list[list[EncodedSection]] = reply["sections"]
        gathered = [decode_section(sections[0]) for sections in per_worker]
        max_bits = max(sum(s.bits for s in sections) for sections in per_worker)
        cost = self.cost_model.allgather(float(max_bits))
        return CollectiveResult(aggregate=None, gathered=gathered, cost=cost)

    def allgather_sections(
        self,
        worker_sections: list[tuple[np.ndarray, ...]],
        *,
        wire_bits_per_section: tuple[float, ...],
    ) -> SectionedGatherResult:
        if len(worker_sections) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} payloads, got {len(worker_sections)}"
            )
        own = worker_sections[self.rank]
        sections = [
            encode_section(np.asarray(array), bits)
            for array, bits in zip(own, wire_bits_per_section)
        ]
        self._record("allgather", sections)
        reply = self._exchange({"kind": "allgather", "sections": sections})
        per_worker: list[list[EncodedSection]] = reply["sections"]
        gathered = [
            tuple(decode_section(section) for section in sections)
            for sections in per_worker
        ]
        max_bits = max(sum(s.bits for s in sections) for sections in per_worker)
        cost = self.cost_model.allgather(float(max_bits))
        return SectionedGatherResult(gathered=gathered, cost=cost)

    def parameter_server(self, *args, **kwargs):
        raise NotImplementedError(
            "the bridge transports all-reduce and all-gather; no registered "
            "scheme aggregates through a parameter server"
        )


class AggregationServer:
    """Reduces wire payloads from lockstep workers and broadcasts results.

    The server owns one channel endpoint per worker.  Workers run the same
    deterministic scheme, so they issue identical sequences of collective
    calls; the server collects message ``k`` from every worker, validates
    that kinds/operators/collectives agree, decodes the payload bytes, folds
    them with the exact per-hop order of the simulated collective
    (:meth:`CollectiveBackend.reduce_vectors` on the same cluster), and
    replies.  Gathers are forwarded verbatim: every worker receives every
    worker's encoded sections.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        endpoints: list,
        *,
        timeout: float = DEFAULT_TIMEOUT,
    ):
        self.backend = CollectiveBackend(cluster)
        self.endpoints = endpoints
        self.timeout = timeout
        self.downlink_bytes = 0
        self.collective_calls = 0
        self.results: dict[int, dict] = {}

    def serve(self) -> dict[int, dict]:
        """Serve collective traffic until every worker sends its result."""
        world = len(self.endpoints)
        try:
            while len(self.results) < world:
                batch = [
                    self.endpoints[rank].recv(self.timeout) for rank in range(world)
                ]
                kinds = {message.get("kind") for message in batch}
                if kinds == {"result"}:
                    for message in batch:
                        self.results[message["rank"]] = message
                    break
                if len(kinds) != 1:
                    raise BridgeProtocolError(
                        f"workers desynchronised: mixed message kinds {sorted(kinds)}"
                    )
                self._serve_collective(batch)
        except Exception as error:
            # A worker blocked on recv() must fail loudly, not time out in
            # silence: broadcast the failure before propagating it.
            for endpoint in self.endpoints:
                try:
                    endpoint.send({"kind": "error", "error": repr(error)})
                except Exception:  # reprolint: disable=RPL007 - best-effort notify; the original error re-raises below
                    pass  # pragma: no cover - channel already gone
            raise
        return self.results

    def _serve_collective(self, batch: list[dict]) -> None:
        kind = batch[0]["kind"]
        seqs = {message["seq"] for message in batch}
        if len(seqs) != 1:
            raise BridgeProtocolError(f"workers desynchronised: seqs {sorted(seqs)}")
        by_rank = sorted(batch, key=lambda message: message["rank"])
        if [message["rank"] for message in by_rank] != list(range(len(batch))):
            raise BridgeProtocolError("duplicate or missing worker ranks in batch")
        self.collective_calls += 1
        seq = by_rank[0]["seq"]

        if kind == "allreduce":
            ops = {repr(message["op"]) for message in by_rank}
            collectives = {message["collective"] for message in by_rank}
            if len(ops) != 1 or len(collectives) != 1:
                raise BridgeProtocolError(
                    f"workers disagree on the reduction: ops={sorted(ops)} "
                    f"collectives={sorted(collectives)}"
                )
            vectors = [decode_section(message["section"]) for message in by_rank]
            aggregate = self.backend.reduce_vectors(
                vectors, by_rank[0]["op"], Collective(by_rank[0]["collective"])
            )
            section = encode_section(np.asarray(aggregate), 64.0)
            reply = {"kind": "reduced", "seq": seq, "section": section}
            for endpoint in self.endpoints:
                endpoint.send(reply)
                self.downlink_bytes += section.nbytes
        elif kind == "allgather":
            counts = {len(message["sections"]) for message in by_rank}
            if len(counts) != 1:
                raise BridgeProtocolError(
                    f"workers disagree on section counts: {sorted(counts)}"
                )
            all_sections = [message["sections"] for message in by_rank]
            reply = {"kind": "gathered", "seq": seq, "sections": all_sections}
            nbytes = sum(s.nbytes for sections in all_sections for s in sections)
            for endpoint in self.endpoints:
                endpoint.send(reply)
                self.downlink_bytes += nbytes
        else:
            raise BridgeProtocolError(f"unknown message kind {kind!r}")


class GradientWorker:
    """One rank of the harness: runs the scheme over every trace step."""

    def __init__(
        self,
        rank: int,
        spec: str,
        trace: GradientTrace,
        cluster: ClusterSpec,
        endpoint,
        *,
        seed: int = 0,
        timeout: float = DEFAULT_TIMEOUT,
    ):
        self.rank = rank
        self.spec = spec
        self.trace = trace
        self.cluster = cluster
        self.endpoint = endpoint
        self.seed = seed
        self.timeout = timeout

    def run(self) -> dict:
        """Aggregate every trace step; return the result message."""
        backend = TransportBackend(
            self.cluster, self.rank, self.endpoint, timeout=self.timeout
        )
        ctx = SimContext(
            backend=backend,
            kernels=KernelCostModel(gpu=self.cluster.gpu),
            rng=np.random.default_rng(self.seed),
            kernel_backend=KernelBackend.LEGACY,
        )
        scheme = make_scheme(self.spec)
        world = self.cluster.world_size
        d = self.trace.num_coordinates
        zero = np.zeros(d, dtype=np.float32)

        rounds = []
        for step in self.trace.steps:
            # SPMD: only this worker's own row carries data; peers'
            # contributions arrive through the collective, never this list.
            gradients = [zero] * world
            gradients[self.rank] = step.flat(self.rank)
            calls_before = len(backend.calls)
            bits_before = backend.uplink_bits
            bytes_before = backend.uplink_bytes
            started = time.perf_counter()
            result = scheme.aggregate(gradients, ctx)
            wall_seconds = time.perf_counter() - started
            rounds.append(
                {
                    "index": step.index,
                    "mean": np.asarray(result.mean_estimate, dtype=np.float32),
                    "uplink_bits": backend.uplink_bits - bits_before,
                    "uplink_bytes": backend.uplink_bytes - bytes_before,
                    "collective_calls": len(backend.calls) - calls_before,
                    "bits_per_coordinate": result.bits_per_coordinate,
                    "communication_seconds": result.communication_seconds,
                    "compression_seconds": result.compression_seconds,
                    "wall_seconds": wall_seconds,
                }
            )
        return {"kind": "result", "rank": self.rank, "rounds": rounds}


# ------------------------------------------------------------------ #
# Harness drivers
# ------------------------------------------------------------------ #
@dataclass(frozen=True)
class HarnessRound:
    """Measured outcome of one aggregation round across all workers."""

    index: int
    vnmse: float
    mean_estimate: np.ndarray
    per_worker_bits: tuple[int, ...]
    per_worker_bytes: tuple[int, ...]
    collective_calls: int
    bits_per_coordinate: float
    communication_seconds: float
    compression_seconds: float
    wall_seconds: float


@dataclass(frozen=True)
class HarnessResult:
    """What one harness run measured.

    Attributes:
        spec: The scheme spec that ran.
        transport: ``"inprocess"`` or ``"process"``.
        rounds: Per-round measurements; ``vnmse`` is computed against the
            trace's exact per-step mean.
        downlink_bytes: Total server->worker payload bytes (reported for
            completeness; the differential traffic check compares uplink,
            which is what the simulator's per-scheme accounting prices).
    """

    spec: str
    transport: str
    rounds: tuple[HarnessRound, ...] = field(default_factory=tuple)
    downlink_bytes: int = 0

    @property
    def mean_vnmse(self) -> float:
        return float(np.mean([round_.vnmse for round_ in self.rounds]))

    @property
    def total_uplink_bits(self) -> int:
        return sum(sum(round_.per_worker_bits) for round_ in self.rounds)

    @property
    def total_wall_seconds(self) -> float:
        return float(sum(round_.wall_seconds for round_ in self.rounds))


def _merge_results(
    spec: str,
    transport: str,
    trace: GradientTrace,
    results: dict[int, dict],
    downlink_bytes: int,
) -> HarnessResult:
    world = trace.num_workers
    rounds = []
    for position, step in enumerate(trace.steps):
        per_worker = [results[rank]["rounds"][position] for rank in range(world)]
        means = [entry["mean"] for entry in per_worker]
        # Every worker must leave the round holding the identical estimate:
        # the collective delivered one aggregate, and everything after it is
        # deterministic local arithmetic.  Any divergence is a harness bug.
        for rank in range(1, world):
            if not np.array_equal(means[0], means[rank]):
                raise BridgeProtocolError(
                    f"round {step.index}: worker {rank}'s mean estimate "
                    "diverged from worker 0's"
                )
        rounds.append(
            HarnessRound(
                index=step.index,
                vnmse=vnmse(means[0], step.true_mean()),
                mean_estimate=means[0],
                per_worker_bits=tuple(entry["uplink_bits"] for entry in per_worker),
                per_worker_bytes=tuple(entry["uplink_bytes"] for entry in per_worker),
                collective_calls=per_worker[0]["collective_calls"],
                bits_per_coordinate=per_worker[0]["bits_per_coordinate"],
                communication_seconds=per_worker[0]["communication_seconds"],
                compression_seconds=per_worker[0]["compression_seconds"],
                wall_seconds=max(entry["wall_seconds"] for entry in per_worker),
            )
        )
    return HarnessResult(
        spec=spec,
        transport=transport,
        rounds=tuple(rounds),
        downlink_bytes=downlink_bytes,
    )


def _run_inprocess(
    spec: str,
    trace: GradientTrace,
    cluster: ClusterSpec,
    seed: int,
    timeout: float,
) -> HarnessResult:
    world = cluster.world_size
    channels = [inprocess_channel() for _ in range(world)]
    server = AggregationServer(
        cluster, [server_end for _, server_end in channels], timeout=timeout
    )

    failures: dict[int, BaseException] = {}

    def worker_main(rank: int) -> None:
        worker = GradientWorker(
            rank,
            spec,
            trace,
            cluster,
            channels[rank][0],
            seed=seed,
            timeout=timeout,
        )
        try:
            channels[rank][0].send(worker.run())
        except BaseException as error:  # noqa: B036 - relayed to the driver
            failures[rank] = error
            # Unblock the server so the driver sees the real error.
            channels[rank][0].send({"kind": "result", "rank": rank, "rounds": []})

    threads = [
        threading.Thread(target=worker_main, args=(rank,), name=f"bridge-w{rank}")
        for rank in range(world)
    ]
    for thread in threads:
        thread.start()
    try:
        results = server.serve()
    except Exception as server_error:
        for thread in threads:
            thread.join(timeout=timeout)
        # A worker failure desynchronises the protocol before the server
        # notices; report the root cause, not the symptom.
        if failures:
            rank, error = sorted(failures.items())[0]
            raise BridgeProtocolError(
                f"worker {rank} failed: {error!r}"
            ) from error
        raise server_error
    finally:
        for thread in threads:
            thread.join(timeout=timeout)
    if failures:
        rank, error = sorted(failures.items())[0]
        raise BridgeProtocolError(f"worker {rank} failed: {error!r}") from error
    return _merge_results(spec, "inprocess", trace, results, server.downlink_bytes)


def _process_worker_main(
    rank: int,
    spec: str,
    trace_dir: str,
    cluster: ClusterSpec,
    seed: int,
    timeout: float,
    endpoint,
) -> None:
    """Entry point of one worker OS process (must be module-level to spawn)."""
    try:
        trace = load_trace(trace_dir)
        worker = GradientWorker(
            rank, spec, trace, cluster, endpoint, seed=seed, timeout=timeout
        )
        endpoint.send(worker.run())
    except BaseException as error:  # noqa: B036 - relayed to the driver
        endpoint.send(
            {"kind": "result", "rank": rank, "rounds": [], "error": repr(error)}
        )
        raise


def _run_multiprocess(
    spec: str,
    trace: GradientTrace,
    cluster: ClusterSpec,
    seed: int,
    timeout: float,
    trace_dir: str | None,
) -> HarnessResult:
    world = cluster.world_size
    with tempfile.TemporaryDirectory(prefix="bridge-trace-") as scratch:
        if trace_dir is None:
            # Workers load the trace from disk -- the honest path: each
            # process sees only the recorded artifact, not driver memory.
            save_trace(trace, scratch)
            trace_dir = scratch
        channels = [multiprocess_channel() for _ in range(world)]
        mp_context = multiprocessing.get_context()
        processes = [
            mp_context.Process(
                target=_process_worker_main,
                args=(
                    rank,
                    spec,
                    str(Path(trace_dir)),
                    cluster,
                    seed,
                    timeout,
                    channels[rank][0],
                ),
                name=f"bridge-w{rank}",
            )
            for rank in range(world)
        ]
        for process in processes:
            process.start()
        server = AggregationServer(
            cluster, [server_end for _, server_end in channels], timeout=timeout
        )
        try:
            results = server.serve()
        finally:
            for process in processes:
                process.join(timeout=timeout)
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()
    errors = {
        rank: message["error"]
        for rank, message in results.items()
        if message.get("error")
    }
    if errors:
        rank = sorted(errors)[0]
        raise BridgeProtocolError(f"worker {rank} failed: {errors[rank]}")
    return _merge_results(spec, "process", trace, results, server.downlink_bytes)


def run_harness(
    spec: str,
    trace: GradientTrace | str | Path,
    *,
    cluster: ClusterSpec | None = None,
    seed: int = 0,
    transport: str = "inprocess",
    timeout: float = DEFAULT_TIMEOUT,
) -> HarnessResult:
    """Actually run ``spec`` over ``trace`` on worker/server actors.

    Args:
        spec: Scheme spec string (each worker builds its own instance).
        trace: An in-memory :class:`GradientTrace` or a trace directory.
        cluster: Simulated cluster pricing the rounds; its world size must
            equal the trace's worker count.  Defaults to the paper testbed.
        seed: Seeds every worker's compression rng.  Workers share the seed,
            which reproduces the monolithic simulator's randomness stream --
            measured and simulated stochastic schemes then agree up to wire
            rounding (different seeds agree only in distribution).
        transport: ``"inprocess"`` (worker threads, the default) or
            ``"process"`` (one OS process per worker; payloads cross real
            pipes and workers load the trace from disk).
        timeout: Per-message channel timeout; a crashed or deadlocked actor
            surfaces as :class:`~repro.bridge.transport.BridgeTimeoutError`.
    """
    trace_dir: str | None = None
    if isinstance(trace, (str, Path)):
        trace_dir = str(trace)
        trace = load_trace(trace_dir)
    cluster = cluster or paper_testbed()
    if cluster.world_size != trace.num_workers:
        raise ValueError(
            f"cluster world size {cluster.world_size} != trace workers "
            f"{trace.num_workers}"
        )
    if transport == "inprocess":
        return _run_inprocess(spec, trace, cluster, seed, timeout)
    if transport == "process":
        return _run_multiprocess(spec, trace, cluster, seed, timeout, trace_dir)
    raise ValueError(f"unknown transport {transport!r}; use 'inprocess' or 'process'")
