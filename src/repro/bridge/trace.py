"""Versioned on-disk gradient traces: npz shards plus a JSON manifest.

A *gradient trace* is the bridge's unit of workload: for each training step,
the gradient every worker computed, layer by layer.  On disk a trace is a
directory::

    trace/
      manifest.json       # format tag, version, layers, steps, metadata
      step_00000.npz      # one shard per step: key "w{rank}::{layer}"
      step_00001.npz
      ...

The manifest pins the layer schema (names, shapes, dtypes) and the shard
list; loading validates every array against it and fails loudly with
:class:`TraceFormatError` on any mismatch, so a corrupted or hand-edited
trace can never silently feed wrong tensors into a validation run.  Traces
produced by the recorders in :mod:`repro.bridge.recorders` are
seed-deterministic, and the save -> load round-trip is bit-exact (covered by
a hypothesis fuzz suite).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

#: Format tag every manifest must carry.
TRACE_FORMAT = "repro-gradient-trace"

#: Current (and only) trace format version.
TRACE_VERSION = 1

#: Manifest file name inside a trace directory.
MANIFEST_NAME = "manifest.json"


class TraceFormatError(ValueError):
    """A trace directory does not conform to the on-disk format."""


@dataclass(frozen=True)
class LayerSpec:
    """Schema of one recorded layer: its name, shape, and dtype."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    def __post_init__(self) -> None:
        if not self.name:
            raise TraceFormatError("layer names must be non-empty")
        if any(dim <= 0 for dim in self.shape):
            raise TraceFormatError(f"layer {self.name!r} has a non-positive dimension")
        try:
            np.dtype(self.dtype)
        except TypeError as error:
            raise TraceFormatError(
                f"layer {self.name!r} declares unknown dtype {self.dtype!r}"
            ) from error

    @property
    def size(self) -> int:
        """Number of coordinates in this layer."""
        return int(np.prod(self.shape))

    def to_json(self) -> dict:
        return {"name": self.name, "shape": list(self.shape), "dtype": self.dtype}

    @staticmethod
    def from_json(payload: dict) -> "LayerSpec":
        try:
            return LayerSpec(
                name=str(payload["name"]),
                shape=tuple(int(dim) for dim in payload["shape"]),
                dtype=str(payload["dtype"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise TraceFormatError(f"malformed layer entry {payload!r}") from error


@dataclass(frozen=True)
class TraceStep:
    """One training step: per worker, one gradient array per layer."""

    index: int
    gradients: tuple[tuple[np.ndarray, ...], ...]

    @property
    def num_workers(self) -> int:
        return len(self.gradients)

    def flat(self, rank: int) -> np.ndarray:
        """Worker ``rank``'s gradient flattened to one float32 vector.

        This is the parameter-flattening step a DDP hook performs before
        handing the gradient to the compression scheme.
        """
        layers = self.gradients[rank]
        return np.concatenate(
            [np.asarray(layer, dtype=np.float32).ravel() for layer in layers]
        )

    def flats(self) -> list[np.ndarray]:
        """Every worker's flattened gradient, in rank order."""
        return [self.flat(rank) for rank in range(self.num_workers)]

    def true_mean(self) -> np.ndarray:
        """The exact mean gradient of this step (the harness's ground truth)."""
        return np.mean(np.stack(self.flats()), axis=0)


@dataclass
class GradientTrace:
    """An in-memory gradient trace: layer schema, steps, free-form metadata."""

    layers: tuple[LayerSpec, ...]
    steps: list[TraceStep]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.layers = tuple(self.layers)
        if not self.layers:
            raise TraceFormatError("a trace needs at least one layer")
        if not self.steps:
            raise TraceFormatError("a trace needs at least one step")
        workers = self.steps[0].num_workers
        if workers < 1:
            raise TraceFormatError("a trace needs at least one worker")
        for step in self.steps:
            if step.num_workers != workers:
                raise TraceFormatError(
                    f"step {step.index} has {step.num_workers} workers, "
                    f"expected {workers}"
                )
            for rank, layer_arrays in enumerate(step.gradients):
                self._check_layers(step.index, rank, layer_arrays)

    def _check_layers(
        self, step_index: int, rank: int, layer_arrays: tuple[np.ndarray, ...]
    ) -> None:
        if len(layer_arrays) != len(self.layers):
            raise TraceFormatError(
                f"step {step_index} worker {rank}: {len(layer_arrays)} layer "
                f"arrays, manifest declares {len(self.layers)}"
            )
        for spec, array in zip(self.layers, layer_arrays):
            if tuple(array.shape) != spec.shape:
                raise TraceFormatError(
                    f"step {step_index} worker {rank} layer {spec.name!r}: "
                    f"shape {tuple(array.shape)} != declared {spec.shape}"
                )
            if array.dtype != np.dtype(spec.dtype):
                raise TraceFormatError(
                    f"step {step_index} worker {rank} layer {spec.name!r}: "
                    f"dtype {array.dtype} != declared {spec.dtype}"
                )

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def num_workers(self) -> int:
        return self.steps[0].num_workers

    @property
    def num_coordinates(self) -> int:
        """Flattened gradient length: the sum of all layer sizes."""
        return sum(layer.size for layer in self.layers)

    @property
    def layer_shapes(self) -> list[tuple[int, ...]]:
        """Layer shapes in declaration order (PowerSGD consumes these)."""
        return [layer.shape for layer in self.layers]


def _shard_name(step_index: int) -> str:
    return f"step_{step_index:05d}.npz"


def _array_key(rank: int, layer_name: str) -> str:
    return f"w{rank:05d}::{layer_name}"


def save_trace(trace: GradientTrace, directory: str | Path) -> Path:
    """Write ``trace`` to ``directory`` and return the manifest path.

    The directory is created if needed; an existing manifest is overwritten
    (traces are immutable artifacts -- re-saving is re-recording).
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    shards = []
    for step in trace.steps:
        name = _shard_name(step.index)
        arrays = {
            _array_key(rank, spec.name): np.ascontiguousarray(array)
            for rank, layer_arrays in enumerate(step.gradients)
            for spec, array in zip(trace.layers, layer_arrays)
        }
        np.savez(root / name, **arrays)
        shards.append({"step": step.index, "file": name})
    manifest = {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "num_workers": trace.num_workers,
        "num_coordinates": trace.num_coordinates,
        "layers": [layer.to_json() for layer in trace.layers],
        "shards": shards,
        "metadata": trace.metadata,
    }
    manifest_path = root / MANIFEST_NAME
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return manifest_path


def load_trace(directory: str | Path) -> GradientTrace:
    """Load a trace from ``directory``, validating it against its manifest.

    Raises:
        TraceFormatError: The manifest is missing, unparseable, from an
            unknown format/version, or any shard array deviates from the
            declared schema.
    """
    root = Path(directory)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise TraceFormatError(f"no {MANIFEST_NAME} in {root}: not a gradient trace")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise TraceFormatError(f"{manifest_path} is not valid JSON: {error}") from error
    if not isinstance(manifest, dict):
        raise TraceFormatError(f"{manifest_path} must contain a JSON object")
    if manifest.get("format") != TRACE_FORMAT:
        raise TraceFormatError(
            f"{manifest_path} declares format {manifest.get('format')!r}, "
            f"expected {TRACE_FORMAT!r}"
        )
    if manifest.get("version") != TRACE_VERSION:
        raise TraceFormatError(
            f"trace version {manifest.get('version')!r} is not supported "
            f"(this reader understands version {TRACE_VERSION})"
        )
    for key in ("num_workers", "layers", "shards"):
        if key not in manifest:
            raise TraceFormatError(f"{manifest_path} is missing required key {key!r}")
    layers = tuple(LayerSpec.from_json(entry) for entry in manifest["layers"])
    num_workers = int(manifest["num_workers"])
    if num_workers < 1:
        raise TraceFormatError(f"manifest declares num_workers={num_workers}")

    steps = []
    for entry in manifest["shards"]:
        try:
            step_index = int(entry["step"])
            file_name = str(entry["file"])
        except (KeyError, TypeError, ValueError) as error:
            raise TraceFormatError(f"malformed shard entry {entry!r}") from error
        shard_path = root / file_name
        if not shard_path.exists():
            raise TraceFormatError(
                f"shard {file_name} is listed in the manifest but missing on disk"
            )
        try:
            with np.load(shard_path) as shard:
                gradients = tuple(
                    tuple(
                        _load_array(shard, rank, spec, step_index, file_name)
                        for spec in layers
                    )
                    for rank in range(num_workers)
                )
        except (OSError, ValueError) as error:
            raise TraceFormatError(
                f"shard {file_name} is unreadable: {error}"
            ) from error
        steps.append(TraceStep(index=step_index, gradients=gradients))

    metadata = manifest.get("metadata", {})
    if not isinstance(metadata, dict):
        raise TraceFormatError("manifest metadata must be a JSON object")
    # GradientTrace.__post_init__ re-validates shapes/dtypes against the
    # schema, so a shard whose arrays disagree with the manifest fails here.
    return GradientTrace(layers=layers, steps=steps, metadata=metadata)


def _load_array(shard, rank: int, spec: LayerSpec, step_index: int, file_name: str):
    key = _array_key(rank, spec.name)
    if key not in shard:
        raise TraceFormatError(
            f"shard {file_name} (step {step_index}) is missing array {key!r}"
        )
    array = shard[key]
    if tuple(array.shape) != spec.shape:
        raise TraceFormatError(
            f"shard {file_name} array {key!r}: shape {tuple(array.shape)} "
            f"!= declared {spec.shape}"
        )
    if array.dtype != np.dtype(spec.dtype):
        raise TraceFormatError(
            f"shard {file_name} array {key!r}: dtype {array.dtype} "
            f"!= declared {spec.dtype}"
        )
    return array
