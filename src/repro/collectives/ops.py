"""Reduction operators applied at intermediate hops of a collective.

A standard all-reduce sums FP32/FP16 values.  The paper's THC adaptation
replaces the sum with a *saturating* integer addition (``Sat`` in the paper,
section 3.2.2) so that partially aggregated q-bit integers never overflow the
b-bit wire format.  Modelling the operator explicitly, and applying it hop by
hop, is what lets the simulation reproduce the error behaviour of
saturation-based aggregation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


class ReduceOp(abc.ABC):
    """A binary, elementwise reduction operator used inside collectives."""

    #: Whether (a op b) op c == a op (b op c) holds exactly; non-associative
    #: operators (saturating sums) make the aggregation order significant.
    associative: bool = True

    @abc.abstractmethod
    def combine(self, accumulator: np.ndarray, incoming: np.ndarray) -> np.ndarray:
        """Combine a partial aggregate with one worker's contribution."""

    def combine_into(self, accumulator: np.ndarray, incoming: np.ndarray) -> np.ndarray:
        """In-place combine used by the batched backend's vectorized folds.

        Semantically identical to :meth:`combine` but writes the result into
        ``accumulator`` without allocating.  The caller guarantees the
        accumulator dtype can represent every intermediate value (the batched
        integer folds pick their wire dtype with headroom via
        :func:`repro.compression.kernels.smallest_int_dtype`).
        """
        result = self.combine(accumulator, incoming)
        np.copyto(accumulator, result, casting="unsafe")
        return accumulator

    def identity_like(self, vector: np.ndarray) -> np.ndarray:
        """The identity element for this operator, shaped like ``vector``."""
        return np.zeros_like(vector)

    def finalize(self, accumulator: np.ndarray, world_size: int) -> np.ndarray:
        """Post-process the full aggregate (e.g. divide by n for a mean)."""
        del world_size
        return accumulator


@dataclass(frozen=True)
class SumOp(ReduceOp):
    """Plain elementwise summation (the default all-reduce operator)."""

    def combine(self, accumulator: np.ndarray, incoming: np.ndarray) -> np.ndarray:
        return accumulator + incoming

    def combine_into(self, accumulator: np.ndarray, incoming: np.ndarray) -> np.ndarray:
        np.add(accumulator, incoming, out=accumulator)
        return accumulator


@dataclass(frozen=True)
class MeanOp(ReduceOp):
    """Summation followed by division by the number of workers."""

    def combine(self, accumulator: np.ndarray, incoming: np.ndarray) -> np.ndarray:
        return accumulator + incoming

    def combine_into(self, accumulator: np.ndarray, incoming: np.ndarray) -> np.ndarray:
        np.add(accumulator, incoming, out=accumulator)
        return accumulator

    def finalize(self, accumulator: np.ndarray, world_size: int) -> np.ndarray:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        return accumulator / float(world_size)


@dataclass(frozen=True)
class MaxOp(ReduceOp):
    """Elementwise maximum (used e.g. for agreeing on scaling factors)."""

    def combine(self, accumulator: np.ndarray, incoming: np.ndarray) -> np.ndarray:
        return np.maximum(accumulator, incoming)

    def combine_into(self, accumulator: np.ndarray, incoming: np.ndarray) -> np.ndarray:
        np.maximum(accumulator, incoming, out=accumulator)
        return accumulator

    def identity_like(self, vector: np.ndarray) -> np.ndarray:
        return np.full_like(vector, -np.inf)


@dataclass(frozen=True)
class SaturatingSumOp(ReduceOp):
    """Saturating integer addition: ``Sat(x, y) = clip(x + y, -(2^(b-1)-1), 2^(b-1)-1)``.

    This is the paper's overflow-free aggregation operator for b-bit signed
    integer payloads.  It is applied at every intermediate hop, so the order
    of aggregation matters (the operator is not associative once values
    saturate), which the ring/tree simulations honour.

    Attributes:
        bits: Wire width b of each aggregated integer.
    """

    bits: int
    associative: bool = False

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise ValueError("saturating sum needs at least 2 bits (sign + magnitude)")

    @property
    def max_value(self) -> int:
        """Largest representable magnitude, 2^(b-1) - 1."""
        return (1 << (self.bits - 1)) - 1

    def combine(self, accumulator: np.ndarray, incoming: np.ndarray) -> np.ndarray:
        total = accumulator.astype(np.int64) + incoming.astype(np.int64)
        limit = self.max_value
        return np.clip(total, -limit, limit)

    def combine_into(self, accumulator: np.ndarray, incoming: np.ndarray) -> np.ndarray:
        # Exact as long as the accumulator dtype holds 2 * max_value (both
        # operands are already clipped); the batched backend sizes its integer
        # wire buffers accordingly.
        limit = self.max_value
        np.add(accumulator, incoming, out=accumulator)
        np.clip(accumulator, -limit, limit, out=accumulator)
        return accumulator

    def saturation_fraction(self, aggregate: np.ndarray) -> float:
        """Fraction of coordinates pinned at the saturation limit."""
        if aggregate.size == 0:
            return 0.0
        limit = self.max_value
        saturated = np.count_nonzero(np.abs(aggregate) >= limit)
        return saturated / aggregate.size
