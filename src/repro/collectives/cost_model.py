"""Alpha-beta cost model for collective operations.

The paper measures communication overhead "in terms of the all-reduce input
size, in bits per coordinate" and notes that ring all-reduce moves roughly
``2 b`` bits per coordinate (reduce-scatter plus all-gather), while all-gather
and parameter-server aggregation move ``(n - 1) b`` and ``n b`` bits through a
bottleneck link respectively.  The cost model turns a per-worker payload size
into a simulated completion time using the standard alpha-beta formulation:
each of the algorithm's steps costs one link latency (alpha) plus the message
size divided by the bottleneck bandwidth (beta).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.cluster import ClusterSpec


@dataclass(frozen=True)
class CollectiveCost:
    """The priced outcome of one collective invocation.

    Attributes:
        seconds: Simulated completion time.
        bits_sent_per_worker: Average bits each worker pushes into the
            network.  For role-asymmetric schedules (tree all-reduce) the
            per-role numbers are in ``bits_sent_leaf`` / ``bits_sent_interior``.
        bits_on_bottleneck: Bits that traverse the most-loaded link (the
            quantity that actually limits scalability).
        steps: Number of communication steps in the schedule.
        bits_sent_leaf: Bits a leaf-role worker sends, for schedules where
            roles differ (tree all-reduce); ``None`` for symmetric schedules.
        bits_sent_interior: Bits an interior-role worker sends; ``None`` for
            symmetric schedules.
    """

    seconds: float
    bits_sent_per_worker: float
    bits_on_bottleneck: float
    steps: int
    bits_sent_leaf: float | None = None
    bits_sent_interior: float | None = None

    def __post_init__(self) -> None:
        if self.seconds < 0 or self.bits_sent_per_worker < 0 or self.bits_on_bottleneck < 0:
            raise ValueError("cost components must be non-negative")
        if self.steps < 0:
            raise ValueError("steps must be non-negative")
        for role_bits in (self.bits_sent_leaf, self.bits_sent_interior):
            if role_bits is not None and role_bits < 0:
                raise ValueError("per-role traffic must be non-negative")


@dataclass(frozen=True)
class CollectiveCostModel:
    """Prices collective schedules on a physical cluster.

    The model assumes the inter-node link is the bottleneck whenever the
    cluster spans several nodes (true for the paper's testbed, where NVLink is
    an order of magnitude faster than the 100 Gbps NIC).
    """

    cluster: ClusterSpec

    def _alpha_beta(self) -> tuple[float, float]:
        """Return (latency per step, seconds per bit) of the bottleneck link.

        Ring-style schedules run at the pace of the slowest member, so the
        worst NIC tier among the cluster's worker profiles scales the
        per-bit cost.
        """
        if self.cluster.num_nodes > 1:
            nic = self.cluster.inter_node_nic
        else:
            nic = self.cluster.intra_node_nic
        beta = self.cluster.worst_nic_scale() / (nic.effective_bandwidth_gbps(1) * 1e9)
        return nic.latency_s, beta

    # ------------------------------------------------------------------ #
    # All-reduce family
    # ------------------------------------------------------------------ #
    def ring_allreduce(self, payload_bits: float) -> CollectiveCost:
        """Ring all-reduce of a ``payload_bits``-sized vector per worker.

        2(n-1) steps of ``payload / n``-sized blocks; every worker sends and
        receives ``2 (n-1)/n * payload`` bits in total.
        """
        self._check_payload(payload_bits)
        n = self.cluster.world_size
        if n == 1 or payload_bits == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        alpha, beta = self._alpha_beta()
        block_bits = payload_bits / n
        steps = 2 * (n - 1)
        seconds = steps * (alpha + block_bits * beta)
        sent = steps * block_bits
        return CollectiveCost(seconds, sent, sent, steps)

    def tree_allreduce(self, payload_bits: float) -> CollectiveCost:
        """Binary-tree all-reduce: reduce to the root, then broadcast down.

        Each of the 2*depth steps moves the full payload over one link.
        Traffic is role-asymmetric: a leaf transmits the payload once (on the
        way up) while an interior worker sends it up once plus down once per
        child.  Every one of the tree's n-1 edges carries the payload up and
        down exactly once, so the cluster-wide sent traffic totals
        ``2 (n-1) * payload`` and ``bits_sent_per_worker`` is that total
        averaged over the n workers.
        """
        self._check_payload(payload_bits)
        n = self.cluster.world_size
        if n == 1 or payload_bits == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        alpha, beta = self._alpha_beta()
        depth = max(1, (n - 1).bit_length())
        steps = 2 * depth
        seconds = steps * (alpha + payload_bits * beta)
        # A heap-shaped binary tree of n workers has ceil(n/2) leaves; the
        # remaining 2(n-1) - num_leaves sends are spread over interior nodes.
        num_leaves = (n + 1) // 2
        num_interior = n - num_leaves
        leaf_sent = payload_bits
        interior_sent = (2 * (n - 1) - num_leaves) * payload_bits / num_interior
        mean_sent = 2 * (n - 1) * payload_bits / n
        return CollectiveCost(
            seconds,
            mean_sent,
            2.0 * payload_bits,
            steps,
            bits_sent_leaf=leaf_sent,
            bits_sent_interior=interior_sent,
        )

    def reduce_scatter(self, payload_bits: float) -> CollectiveCost:
        """Ring reduce-scatter: (n-1) steps of payload/n blocks."""
        self._check_payload(payload_bits)
        n = self.cluster.world_size
        if n == 1 or payload_bits == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        alpha, beta = self._alpha_beta()
        block_bits = payload_bits / n
        steps = n - 1
        seconds = steps * (alpha + block_bits * beta)
        sent = steps * block_bits
        return CollectiveCost(seconds, sent, sent, steps)

    # ------------------------------------------------------------------ #
    # All-gather and parameter server
    # ------------------------------------------------------------------ #
    def allgather(self, payload_bits: float) -> CollectiveCost:
        """Ring all-gather: every worker ends up with all n payloads.

        Each worker sends its own payload (n-1) times (forwarding neighbours'
        blocks), so the traffic grows linearly with the number of workers --
        the scalability drawback the paper contrasts with all-reduce.
        """
        self._check_payload(payload_bits)
        n = self.cluster.world_size
        if n == 1 or payload_bits == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        alpha, beta = self._alpha_beta()
        steps = n - 1
        seconds = steps * (alpha + payload_bits * beta)
        sent = steps * payload_bits
        return CollectiveCost(seconds, sent, sent, steps)

    def parameter_server(
        self, payload_bits: float, *, downlink_bits: float | None = None, num_servers: int = 1
    ) -> CollectiveCost:
        """Centralised parameter-server aggregation.

        All n workers upload their payload to the server(s) and download the
        aggregate.  The server-side link carries ``n * payload`` bits each
        way (divided across ``num_servers`` for a sharded/co-located PS), and
        the NIC's connection-scalability penalty applies because the server
        maintains a connection per worker -- the many-to-one pattern the paper
        calls out.
        """
        self._check_payload(payload_bits)
        if num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        n = self.cluster.world_size
        if n == 1 or payload_bits == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        if downlink_bits is None:
            downlink_bits = payload_bits
        nic = (
            self.cluster.inter_node_nic
            if self.cluster.num_nodes > 1
            else self.cluster.intra_node_nic
        )
        alpha = nic.latency_s
        per_server_workers = max(1, -(-n // num_servers))
        # The slowest NIC tier gates the server link, as in _alpha_beta.
        bandwidth_bps = (
            nic.effective_bandwidth_gbps(per_server_workers)
            * 1e9
            / self.cluster.worst_nic_scale()
        )
        upload_bits = n * payload_bits / num_servers
        download_bits = n * downlink_bits / num_servers
        seconds = 2 * alpha + (upload_bits + download_bits) / bandwidth_bps
        bottleneck = upload_bits + download_bits
        return CollectiveCost(seconds, payload_bits + downlink_bits, bottleneck, 2)

    # ------------------------------------------------------------------ #
    # Per-bucket pricing
    # ------------------------------------------------------------------ #
    def per_bucket(
        self, schedule: str, payload_bits: float, num_buckets: int, **kwargs
    ) -> list[CollectiveCost]:
        """Price ``payload_bits`` split into ``num_buckets`` separate collectives.

        This is how the bucketed pipeline simulator interleaves communication
        with compute: each bucket's payload is priced independently (each
        bucket pays its own per-step latency), so the sum of the bucket times
        is never less than one monolithic collective of the full payload.

        Args:
            schedule: Name of a pricing method on this model
                (``"ring_allreduce"``, ``"tree_allreduce"``, ``"allgather"``,
                ``"reduce_scatter"``, or ``"parameter_server"``).
            payload_bits: Total per-worker payload across all buckets.
            num_buckets: How many equal buckets to split the payload into.
            **kwargs: Passed through to the pricing method.
        """
        self._check_payload(payload_bits)
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        price = getattr(self, schedule, None)
        if price is None or schedule.startswith("_") or not callable(price):
            raise ValueError(f"unknown collective schedule {schedule!r}")
        return [price(payload_bits / num_buckets, **kwargs) for _ in range(num_buckets)]

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def bits_per_coordinate(payload_bits: float, num_coordinates: int) -> float:
        """The paper's ``b`` metric: all-reduce input bits per gradient coordinate."""
        if num_coordinates <= 0:
            raise ValueError("num_coordinates must be positive")
        if payload_bits < 0:
            raise ValueError("payload_bits must be non-negative")
        return payload_bits / num_coordinates

    @staticmethod
    def _check_payload(payload_bits: float) -> None:
        if payload_bits < 0:
            raise ValueError("payload_bits must be non-negative")
