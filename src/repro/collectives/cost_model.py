"""Alpha-beta cost model for collective operations.

The paper measures communication overhead "in terms of the all-reduce input
size, in bits per coordinate" and notes that ring all-reduce moves roughly
``2 b`` bits per coordinate (reduce-scatter plus all-gather), while all-gather
and parameter-server aggregation move ``(n - 1) b`` and ``n b`` bits through a
bottleneck link respectively.  The cost model turns a per-worker payload size
into a simulated completion time using the standard alpha-beta formulation:
each of the algorithm's steps costs one link latency (alpha) plus the message
size divided by the bottleneck bandwidth (beta).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.cluster import ClusterSpec


@dataclass(frozen=True)
class CollectiveCost:
    """The priced outcome of one collective invocation.

    Attributes:
        seconds: Simulated completion time.
        bits_sent_per_worker: Bits each worker pushes into the network.
        bits_on_bottleneck: Bits that traverse the most-loaded link (the
            quantity that actually limits scalability).
        steps: Number of communication steps in the schedule.
    """

    seconds: float
    bits_sent_per_worker: float
    bits_on_bottleneck: float
    steps: int

    def __post_init__(self) -> None:
        if self.seconds < 0 or self.bits_sent_per_worker < 0 or self.bits_on_bottleneck < 0:
            raise ValueError("cost components must be non-negative")
        if self.steps < 0:
            raise ValueError("steps must be non-negative")


@dataclass(frozen=True)
class CollectiveCostModel:
    """Prices collective schedules on a physical cluster.

    The model assumes the inter-node link is the bottleneck whenever the
    cluster spans several nodes (true for the paper's testbed, where NVLink is
    an order of magnitude faster than the 100 Gbps NIC).
    """

    cluster: ClusterSpec

    def _alpha_beta(self) -> tuple[float, float]:
        """Return (latency per step, seconds per bit) of the bottleneck link."""
        if self.cluster.num_nodes > 1:
            nic = self.cluster.inter_node_nic
        else:
            nic = self.cluster.intra_node_nic
        return nic.latency_s, 1.0 / (nic.effective_bandwidth_gbps(1) * 1e9)

    # ------------------------------------------------------------------ #
    # All-reduce family
    # ------------------------------------------------------------------ #
    def ring_allreduce(self, payload_bits: float) -> CollectiveCost:
        """Ring all-reduce of a ``payload_bits``-sized vector per worker.

        2(n-1) steps of ``payload / n``-sized blocks; every worker sends and
        receives ``2 (n-1)/n * payload`` bits in total.
        """
        self._check_payload(payload_bits)
        n = self.cluster.world_size
        if n == 1 or payload_bits == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        alpha, beta = self._alpha_beta()
        block_bits = payload_bits / n
        steps = 2 * (n - 1)
        seconds = steps * (alpha + block_bits * beta)
        sent = steps * block_bits
        return CollectiveCost(seconds, sent, sent, steps)

    def tree_allreduce(self, payload_bits: float) -> CollectiveCost:
        """Binary-tree all-reduce: reduce to the root, then broadcast down.

        Each of the 2*depth steps moves the full payload over one link.
        """
        self._check_payload(payload_bits)
        n = self.cluster.world_size
        if n == 1 or payload_bits == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        alpha, beta = self._alpha_beta()
        depth = max(1, (n - 1).bit_length())
        steps = 2 * depth
        seconds = steps * (alpha + payload_bits * beta)
        # An interior worker forwards the payload up and down once each.
        sent = 2.0 * payload_bits
        return CollectiveCost(seconds, sent, 2.0 * payload_bits, steps)

    def reduce_scatter(self, payload_bits: float) -> CollectiveCost:
        """Ring reduce-scatter: (n-1) steps of payload/n blocks."""
        self._check_payload(payload_bits)
        n = self.cluster.world_size
        if n == 1 or payload_bits == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        alpha, beta = self._alpha_beta()
        block_bits = payload_bits / n
        steps = n - 1
        seconds = steps * (alpha + block_bits * beta)
        sent = steps * block_bits
        return CollectiveCost(seconds, sent, sent, steps)

    # ------------------------------------------------------------------ #
    # All-gather and parameter server
    # ------------------------------------------------------------------ #
    def allgather(self, payload_bits: float) -> CollectiveCost:
        """Ring all-gather: every worker ends up with all n payloads.

        Each worker sends its own payload (n-1) times (forwarding neighbours'
        blocks), so the traffic grows linearly with the number of workers --
        the scalability drawback the paper contrasts with all-reduce.
        """
        self._check_payload(payload_bits)
        n = self.cluster.world_size
        if n == 1 or payload_bits == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        alpha, beta = self._alpha_beta()
        steps = n - 1
        seconds = steps * (alpha + payload_bits * beta)
        sent = steps * payload_bits
        return CollectiveCost(seconds, sent, sent, steps)

    def parameter_server(
        self, payload_bits: float, *, downlink_bits: float | None = None, num_servers: int = 1
    ) -> CollectiveCost:
        """Centralised parameter-server aggregation.

        All n workers upload their payload to the server(s) and download the
        aggregate.  The server-side link carries ``n * payload`` bits each
        way (divided across ``num_servers`` for a sharded/co-located PS), and
        the NIC's connection-scalability penalty applies because the server
        maintains a connection per worker -- the many-to-one pattern the paper
        calls out.
        """
        self._check_payload(payload_bits)
        if num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        n = self.cluster.world_size
        if n == 1 or payload_bits == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        if downlink_bits is None:
            downlink_bits = payload_bits
        nic = (
            self.cluster.inter_node_nic
            if self.cluster.num_nodes > 1
            else self.cluster.intra_node_nic
        )
        alpha = nic.latency_s
        per_server_workers = max(1, -(-n // num_servers))
        bandwidth_bps = nic.effective_bandwidth_gbps(per_server_workers) * 1e9
        upload_bits = n * payload_bits / num_servers
        download_bits = n * downlink_bits / num_servers
        seconds = 2 * alpha + (upload_bits + download_bits) / bandwidth_bps
        bottleneck = upload_bits + download_bits
        return CollectiveCost(seconds, payload_bits + downlink_bits, bottleneck, 2)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def bits_per_coordinate(payload_bits: float, num_coordinates: int) -> float:
        """The paper's ``b`` metric: all-reduce input bits per gradient coordinate."""
        if num_coordinates <= 0:
            raise ValueError("num_coordinates must be positive")
        if payload_bits < 0:
            raise ValueError("payload_bits must be non-negative")
        return payload_bits / num_coordinates

    @staticmethod
    def _check_payload(payload_bits: float) -> None:
        if payload_bits < 0:
            raise ValueError("payload_bits must be non-negative")
