"""Alpha-beta cost model for collective operations.

The paper measures communication overhead "in terms of the all-reduce input
size, in bits per coordinate" and notes that ring all-reduce moves roughly
``2 b`` bits per coordinate (reduce-scatter plus all-gather), while all-gather
and parameter-server aggregation move ``(n - 1) b`` and ``n b`` bits through a
bottleneck link respectively.  The cost model turns a per-worker payload size
into a simulated completion time using the standard alpha-beta formulation:
each of the algorithm's steps costs one link latency (alpha) plus the message
size divided by the bottleneck bandwidth (beta).

On a multi-rack cluster (a :class:`~repro.topology.fabric.FabricSpec` behind
:meth:`ClusterSpec.with_fabric`) the model grows two qualitatively new
schedules:

* :meth:`CollectiveCostModel.hierarchical_allreduce` -- rack-local
  reduce-scatter, spine all-reduce of the shards, rack-local all-gather.
  Only ``payload / workers_per_rack`` crosses the oversubscribed spine, which
  is why hierarchy survives oversubscription that cripples a flat ring.
  ``ring_allreduce`` delegates to it automatically when the fabric is active,
  so every scheme becomes rack-aware without code changes;
* :meth:`CollectiveCostModel.switch_aggregation` -- in-network (ToR-resident)
  aggregation of quantized payloads: hosts stream the payload up once, the
  switch reduces at line rate within its bounded aggregation memory, ToRs
  reconcile across the spine, and the aggregate streams down once.  The
  priced time can never beat the port line-rate lower bound (property-tested).

A fabric with one rack and oversubscription 1.0 is *flat* and prices
bit-exactly like no fabric at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.cluster import ClusterSpec
from repro.topology.fabric import FabricSpec
from repro.topology.hierarchical import (
    HierarchicalBreakdown,
    PhaseCost,
    TierTraffic,
)


@dataclass(frozen=True)
class CollectiveCost:
    """The priced outcome of one collective invocation.

    Attributes:
        seconds: Simulated completion time.
        bits_sent_per_worker: Average bits each worker pushes into the
            network.  For role-asymmetric schedules (tree all-reduce) the
            per-role numbers are in ``bits_sent_leaf`` / ``bits_sent_interior``.
        bits_on_bottleneck: Bits that traverse the most-loaded link (the
            quantity that actually limits scalability).
        steps: Number of communication steps in the schedule.
        bits_sent_leaf: Bits a leaf-role worker sends, for schedules where
            roles differ (tree all-reduce); ``None`` for symmetric schedules.
        bits_sent_interior: Bits an interior-role worker sends; ``None`` for
            symmetric schedules.
    """

    seconds: float
    bits_sent_per_worker: float
    bits_on_bottleneck: float
    steps: int
    bits_sent_leaf: float | None = None
    bits_sent_interior: float | None = None

    def __post_init__(self) -> None:
        if self.seconds < 0 or self.bits_sent_per_worker < 0 or self.bits_on_bottleneck < 0:
            raise ValueError("cost components must be non-negative")
        if self.steps < 0:
            raise ValueError("steps must be non-negative")
        for role_bits in (self.bits_sent_leaf, self.bits_sent_interior):
            if role_bits is not None and role_bits < 0:
                raise ValueError("per-role traffic must be non-negative")


@dataclass(frozen=True)
class CollectiveCostModel:
    """Prices collective schedules on a physical cluster.

    The model assumes the inter-node link is the bottleneck whenever the
    cluster spans several nodes (true for the paper's testbed, where NVLink is
    an order of magnitude faster than the 100 Gbps NIC).
    """

    cluster: ClusterSpec

    def _alpha_beta(self) -> tuple[float, float]:
        """Return (latency per step, seconds per bit) of the bottleneck link.

        Ring-style schedules run at the pace of the slowest member, so the
        worst NIC tier among the cluster's worker profiles scales the
        per-bit cost.
        """
        if self.cluster.num_nodes > 1:
            nic = self.cluster.inter_node_nic
        else:
            nic = self.cluster.intra_node_nic
        beta = self.cluster.worst_nic_scale() / (nic.effective_bandwidth_gbps(1) * 1e9)
        return nic.latency_s, beta

    def _active_fabric(self) -> FabricSpec | None:
        """The cluster's fabric when it actually constrains collectives.

        ``None`` for fabric-less clusters *and* for flat fabrics (one rack,
        oversubscription 1.0), which must price bit-exactly like the
        historical single-switch cluster.
        """
        fabric = self.cluster.fabric
        if fabric is None or fabric.is_flat:
            return None
        return fabric

    def _spine_alpha_beta(self) -> tuple[float, float]:
        """(latency, s/bit) of a spine-crossing step.

        Identical to :meth:`_alpha_beta` on a flat cluster; on an active
        fabric each spine traversal pays the extra switch-hop latency and a
        per-flow bandwidth divided by the oversubscription ratio.
        """
        alpha, beta = self._alpha_beta()
        fabric = self._active_fabric()
        if fabric is None:
            return alpha, beta
        return alpha + fabric.spine_latency_s, beta * fabric.oversubscription

    def _domain_alpha_beta(self) -> tuple[float, float]:
        """(latency, s/bit) of an intra-domain, inter-rack step.

        Traffic between racks of one failure domain (a fat-tree pod, a torus
        plane, a sub-DCell) leaves the ToR -- paying the switch-hop latency --
        but stays below the oversubscribed core, so it runs at the full
        host rate.  Only meaningful when ``racks_per_domain > 1``.
        """
        alpha, beta = self._alpha_beta()
        fabric = self._active_fabric()
        if fabric is None:
            return alpha, beta
        return alpha + fabric.spine_latency_s, beta

    # ------------------------------------------------------------------ #
    # All-reduce family
    # ------------------------------------------------------------------ #
    def ring_allreduce(self, payload_bits: float) -> CollectiveCost:
        """Ring all-reduce of a ``payload_bits``-sized vector per worker.

        2(n-1) steps of ``payload / n``-sized blocks; every worker sends and
        receives ``2 (n-1)/n * payload`` bits in total.  On an active
        multi-rack fabric the flat rank-ordered ring would drag every block
        across the oversubscribed spine, so the model prices the schedule a
        topology-aware engine actually runs: the hierarchical all-reduce.
        """
        self._check_payload(payload_bits)
        n = self.cluster.world_size
        if n == 1 or payload_bits == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        if self._active_fabric() is not None:
            return self.hierarchical_allreduce(payload_bits)
        alpha, beta = self._alpha_beta()
        block_bits = payload_bits / n
        steps = 2 * (n - 1)
        seconds = steps * (alpha + block_bits * beta)
        sent = steps * block_bits
        return CollectiveCost(seconds, sent, sent, steps)

    def tree_allreduce(self, payload_bits: float) -> CollectiveCost:
        """Binary-tree all-reduce: reduce to the root, then broadcast down.

        Each of the 2*depth steps moves the full payload over one link.
        Traffic is role-asymmetric: a leaf transmits the payload once (on the
        way up) while an interior worker sends it up once plus down once per
        child.  Every one of the tree's n-1 edges carries the payload up and
        down exactly once, so the cluster-wide sent traffic totals
        ``2 (n-1) * payload`` and ``bits_sent_per_worker`` is that total
        averaged over the n workers.
        """
        self._check_payload(payload_bits)
        n = self.cluster.world_size
        if n == 1 or payload_bits == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        # Tree edges cross racks arbitrarily, so every step is priced as a
        # (possibly oversubscribed) spine traversal on an active fabric.
        alpha, beta = self._spine_alpha_beta()
        depth = max(1, (n - 1).bit_length())
        steps = 2 * depth
        seconds = steps * (alpha + payload_bits * beta)
        # A heap-shaped binary tree of n workers has ceil(n/2) leaves; the
        # remaining 2(n-1) - num_leaves sends are spread over interior nodes.
        num_leaves = (n + 1) // 2
        num_interior = n - num_leaves
        leaf_sent = payload_bits
        interior_sent = (2 * (n - 1) - num_leaves) * payload_bits / num_interior
        mean_sent = 2 * (n - 1) * payload_bits / n
        return CollectiveCost(
            seconds,
            mean_sent,
            2.0 * payload_bits,
            steps,
            bits_sent_leaf=leaf_sent,
            bits_sent_interior=interior_sent,
        )

    def reduce_scatter(self, payload_bits: float) -> CollectiveCost:
        """Ring reduce-scatter: (n-1) steps of payload/n blocks."""
        self._check_payload(payload_bits)
        n = self.cluster.world_size
        if n == 1 or payload_bits == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        alpha, beta = self._spine_alpha_beta()
        block_bits = payload_bits / n
        steps = n - 1
        seconds = steps * (alpha + block_bits * beta)
        sent = steps * block_bits
        return CollectiveCost(seconds, sent, sent, steps)

    # ------------------------------------------------------------------ #
    # All-gather and parameter server
    # ------------------------------------------------------------------ #
    def allgather(self, payload_bits: float) -> CollectiveCost:
        """Ring all-gather: every worker ends up with all n payloads.

        Each worker sends its own payload (n-1) times (forwarding neighbours'
        blocks), so the traffic grows linearly with the number of workers --
        the scalability drawback the paper contrasts with all-reduce.
        """
        self._check_payload(payload_bits)
        n = self.cluster.world_size
        if n == 1 or payload_bits == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        # The gathered payloads circulate through every rack, so each of
        # the ring's steps is a spine traversal on an active fabric.
        alpha, beta = self._spine_alpha_beta()
        steps = n - 1
        seconds = steps * (alpha + payload_bits * beta)
        sent = steps * payload_bits
        return CollectiveCost(seconds, sent, sent, steps)

    def parameter_server(
        self, payload_bits: float, *, downlink_bits: float | None = None, num_servers: int = 1
    ) -> CollectiveCost:
        """Centralised parameter-server aggregation.

        All n workers upload their payload to the server(s) and download the
        aggregate.  The server-side link carries ``n * payload`` bits each
        way (divided across ``num_servers`` for a sharded/co-located PS), and
        the NIC's connection-scalability penalty applies because the server
        maintains a connection per worker -- the many-to-one pattern the paper
        calls out.
        """
        self._check_payload(payload_bits)
        if num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        n = self.cluster.world_size
        if n == 1 or payload_bits == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        if downlink_bits is None:
            downlink_bits = payload_bits
        nic = (
            self.cluster.inter_node_nic
            if self.cluster.num_nodes > 1
            else self.cluster.intra_node_nic
        )
        alpha = nic.latency_s
        per_server_workers = max(1, -(-n // num_servers))
        # The slowest NIC tier gates the server link, as in _alpha_beta.
        bandwidth_bps = (
            nic.effective_bandwidth_gbps(per_server_workers)
            * 1e9
            / self.cluster.worst_nic_scale()
        )
        fabric = self._active_fabric()
        if fabric is not None:
            # The server sits behind the spine from most workers' racks: its
            # access link sees the oversubscribed share of the fabric.
            alpha += fabric.spine_latency_s
            bandwidth_bps /= fabric.oversubscription
        upload_bits = n * payload_bits / num_servers
        download_bits = n * downlink_bits / num_servers
        seconds = 2 * alpha + (upload_bits + download_bits) / bandwidth_bps
        bottleneck = upload_bits + download_bits
        return CollectiveCost(seconds, payload_bits + downlink_bits, bottleneck, 2)

    # ------------------------------------------------------------------ #
    # Hierarchical (multi-rack) all-reduce
    # ------------------------------------------------------------------ #
    def hierarchical_breakdown(self, payload_bits: float) -> HierarchicalBreakdown:
        """Phase/tier decomposition of the hierarchical all-reduce.

        The schedule is the standard tiered algorithm: a rack-local ring
        reduce-scatter (each worker ends with a ``payload / m`` shard reduced
        within its rack), a ring all-reduce of each shard among the rack
        counterparts, and a rack-local ring all-gather broadcasting the
        shards back.  Only ``payload / m`` per worker ever leaves a rack;
        switches forward but never aggregate, so the tier accounting shows
        zero aggregated bits (the conservation property the test suite
        checks).

        On a fabric whose racks group into multi-rack failure domains
        (``racks_per_domain > 1`` -- a fat-tree pod, a torus plane, a
        sub-DCell) the inter-rack all-reduce splits in two: a
        ``domain_allreduce`` phase among the ``R_d`` racks of each domain,
        which stays below the core and runs at the full host rate, followed
        by the ``spine_allreduce`` phase among the ``D`` domains over the
        (possibly oversubscribed) core.  With ``racks_per_domain == 1`` the
        domain phase has zero steps and is omitted, reproducing the
        historical two-tier pricing bit-exactly.
        """
        self._check_payload(payload_bits)
        fabric = self._active_fabric()
        num_racks = self.cluster.num_racks
        racks_per_domain = fabric.racks_per_domain if fabric is not None else 1
        num_domains = num_racks // racks_per_domain
        workers_per_rack = self.cluster.workers_per_rack
        alpha, beta = self._alpha_beta()
        spine_alpha, spine_beta = self._spine_alpha_beta()

        shard_bits = payload_bits / workers_per_rack
        local_steps = workers_per_rack - 1
        local_seconds = local_steps * (alpha + shard_bits * beta)
        local_sent = local_steps * shard_bits

        phases = [
            PhaseCost("rack_reduce_scatter", local_seconds, local_steps, local_sent),
        ]
        if racks_per_domain > 1:
            domain_alpha, domain_beta = self._domain_alpha_beta()
            domain_steps = 2 * (racks_per_domain - 1)
            domain_block = shard_bits / racks_per_domain
            domain_seconds = domain_steps * (domain_alpha + domain_block * domain_beta)
            domain_sent = domain_steps * domain_block
            phases.append(
                PhaseCost("domain_allreduce", domain_seconds, domain_steps, domain_sent)
            )
        else:
            domain_sent = 0.0

        spine_steps = 2 * (num_domains - 1)
        spine_block = shard_bits / num_domains
        spine_seconds = spine_steps * (spine_alpha + spine_block * spine_beta)
        spine_sent = spine_steps * spine_block
        phases.append(PhaseCost("spine_allreduce", spine_seconds, spine_steps, spine_sent))
        phases.append(PhaseCost("rack_broadcast", local_seconds, local_steps, local_sent))

        # Up-path traffic through the forwarding tiers (the reduce-scatter
        # half of each inter-rack phase): every worker pushes half its
        # domain- and spine-phase traffic upward through its ToR; the
        # switches forward without reducing.
        domain_up_per_rack = workers_per_rack * domain_sent / 2
        spine_up_per_rack = workers_per_rack * spine_sent / 2
        up_bits_per_rack = domain_up_per_rack + spine_up_per_rack
        tiers = [
            TierTraffic(
                tier="tor",
                fan_in=workers_per_rack,
                bits_in=up_bits_per_rack,
                bits_out=up_bits_per_rack,
                aggregates=False,
            ),
        ]
        if racks_per_domain > 1:
            # Pod/aggregation switches carry both the domain-local traffic
            # and the core-bound spine traffic of their racks.
            pod_bits = racks_per_domain * up_bits_per_rack
            tiers.append(
                TierTraffic(
                    tier="pod",
                    fan_in=racks_per_domain,
                    bits_in=pod_bits,
                    bits_out=pod_bits,
                    aggregates=False,
                )
            )
        tiers.append(
            TierTraffic(
                tier="spine",
                fan_in=num_domains,
                bits_in=num_racks * spine_up_per_rack,
                bits_out=num_racks * spine_up_per_rack,
                aggregates=False,
            )
        )
        return HierarchicalBreakdown(phases=tuple(phases), tiers=tuple(tiers))

    def hierarchical_allreduce(self, payload_bits: float) -> CollectiveCost:
        """Rack-local reduce-scatter -> spine all-reduce -> rack broadcast."""
        self._check_payload(payload_bits)
        n = self.cluster.world_size
        if n == 1 or payload_bits == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        breakdown = self.hierarchical_breakdown(payload_bits)
        # The most loaded link is a rack uplink when the fabric is active
        # (all inter-rack traffic of a whole rack: domain plus spine phases),
        # a host link otherwise.
        local = breakdown.phase("rack_reduce_scatter")
        inter_per_worker = (
            breakdown.bits_sent_per_worker - 2 * local.bits_sent_per_worker
        )
        bottleneck = max(
            self.cluster.workers_per_rack * inter_per_worker,
            2 * local.bits_sent_per_worker + inter_per_worker,
        )
        return CollectiveCost(
            breakdown.seconds,
            breakdown.bits_sent_per_worker,
            bottleneck,
            breakdown.steps,
        )

    # ------------------------------------------------------------------ #
    # In-network (switch-resident) aggregation
    # ------------------------------------------------------------------ #
    def switch_breakdown(self, payload_bits: float) -> HierarchicalBreakdown:
        """Phase/tier decomposition of in-network aggregation.

        Every host streams its quantized payload to the ToR exactly once; the
        switch reduces arriving packets at line rate, using its bounded
        aggregation memory in pool-sized chunks (each chunk pays a
        recirculation overhead).  With several racks the ToR partials ring
        across the spine, then the aggregate streams down every host port
        once.  The ToR tier *absorbs* ``(m - 1) * payload`` bits -- the
        aggregation delta the conservation property checks -- and the total
        time can never undercut the port line rate (one payload up, one
        down).

        The access-link transport is lean (SwitchML-style line-rate streams,
        no host protocol-efficiency charge), but physics still applies: the
        up/down phases are gated by the slower of the switch port and the
        host NIC's physical bandwidth, including the cluster's worst NIC
        tier, so a quarter-bandwidth NIC slows in-network aggregation just
        as it slows host-side collectives.
        """
        self._check_payload(payload_bits)
        fabric = self.cluster.fabric or FabricSpec()
        switch = fabric.switch
        num_racks = self.cluster.num_racks
        workers_per_rack = self.cluster.workers_per_rack

        num_chunks = switch.num_chunks(payload_bits)
        host_nic = (
            self.cluster.inter_node_nic
            if self.cluster.num_nodes > 1
            else self.cluster.intra_node_nic
        )
        access_gbps = min(
            switch.line_rate_gbps,
            host_nic.bandwidth_gbps / self.cluster.worst_nic_scale(),
        )
        access_seconds = payload_bits / (access_gbps * 1e9)
        upload_seconds = (
            access_seconds + switch.port_latency_s + num_chunks * switch.chunk_overhead_s
        )
        download_seconds = access_seconds + switch.port_latency_s

        phases = [
            PhaseCost("tor_upload", upload_seconds, 1, payload_bits),
        ]
        if num_racks > 1:
            # ToR partial aggregates ring across the spine.  A single
            # switch-to-switch flow is capped by the port line rate and by the
            # rack's uplink share (m * line_rate / oversubscription).
            spine_beta = max(
                1.0, fabric.oversubscription / workers_per_rack
            ) / (switch.line_rate_gbps * 1e9)
            spine_steps = 2 * (num_racks - 1)
            spine_block = payload_bits / num_racks
            spine_seconds = spine_steps * (
                fabric.spine_latency_s + switch.port_latency_s + spine_block * spine_beta
            )
            phases.append(PhaseCost("spine_allreduce", spine_seconds, spine_steps, 0.0))
        phases.append(PhaseCost("tor_download", download_seconds, 1, 0.0))

        tiers = [
            TierTraffic(
                tier="tor",
                fan_in=workers_per_rack,
                bits_in=workers_per_rack * payload_bits,
                bits_out=payload_bits,
                aggregates=True,
            ),
        ]
        if num_racks > 1:
            tiers.append(
                TierTraffic(
                    tier="spine",
                    fan_in=num_racks,
                    bits_in=num_racks * payload_bits,
                    bits_out=payload_bits,
                    aggregates=True,
                )
            )
        return HierarchicalBreakdown(
            phases=tuple(phases),
            tiers=tuple(tiers),
            line_rate_lower_bound_s=switch.line_rate_seconds(payload_bits),
            num_chunks=num_chunks,
        )

    def switch_aggregation(self, payload_bits: float) -> CollectiveCost:
        """In-network aggregation: hosts send once up, receive once down.

        Works on any cluster: without a fabric the whole cluster hangs off a
        single default ToR (:class:`~repro.topology.fabric.SwitchModel`
        defaults).
        """
        self._check_payload(payload_bits)
        n = self.cluster.world_size
        if n == 1 or payload_bits == 0:
            return CollectiveCost(0.0, 0.0, 0.0, 0)
        breakdown = self.switch_breakdown(payload_bits)
        return CollectiveCost(
            breakdown.seconds,
            payload_bits,
            2.0 * payload_bits,
            breakdown.steps,
        )

    # ------------------------------------------------------------------ #
    # Per-bucket pricing
    # ------------------------------------------------------------------ #
    def per_bucket(
        self, schedule: str, payload_bits: float, num_buckets: int, **kwargs
    ) -> list[CollectiveCost]:
        """Price ``payload_bits`` split into ``num_buckets`` separate collectives.

        This is how the bucketed pipeline simulator interleaves communication
        with compute: each bucket's payload is priced independently (each
        bucket pays its own per-step latency), so the sum of the bucket times
        is never less than one monolithic collective of the full payload.

        Args:
            schedule: Name of a pricing method on this model
                (``"ring_allreduce"``, ``"tree_allreduce"``, ``"allgather"``,
                ``"reduce_scatter"``, ``"parameter_server"``,
                ``"hierarchical_allreduce"``, or ``"switch_aggregation"``).
            payload_bits: Total per-worker payload across all buckets.
            num_buckets: How many equal buckets to split the payload into.
            **kwargs: Passed through to the pricing method.
        """
        self._check_payload(payload_bits)
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        price = getattr(self, schedule, None)
        if price is None or schedule.startswith("_") or not callable(price):
            raise ValueError(f"unknown collective schedule {schedule!r}")
        return [price(payload_bits / num_buckets, **kwargs) for _ in range(num_buckets)]

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def bits_per_coordinate(payload_bits: float, num_coordinates: int) -> float:
        """The paper's ``b`` metric: all-reduce input bits per gradient coordinate."""
        if num_coordinates <= 0:
            raise ValueError("num_coordinates must be positive")
        if payload_bits < 0:
            raise ValueError("payload_bits must be non-negative")
        return payload_bits / num_coordinates

    @staticmethod
    def _check_payload(payload_bits: float) -> None:
        if payload_bits < 0:
            raise ValueError("payload_bits must be non-negative")
