"""Collective communication substrate.

The paper's prototypes aggregate gradients with NCCL collectives (ring and
tree all-reduce, all-gather) or a parameter server.  This package provides a
functional + timed simulation of those aggregation schemes:

* *functional*: given one NumPy vector per worker, each collective actually
  steps through its algorithm and returns the aggregated result every worker
  would hold, applying the reduction operator at intermediate hops exactly as
  a real all-reduce would.  This matters because the paper's saturation-based
  aggregation (section 3.2.2) is a *non-associative-in-precision* per-hop
  operation -- applying it hop by hop is what the scheme actually does.
* *timed*: an alpha-beta cost model turns the per-worker payload size into a
  simulated collective completion time on a :class:`~repro.simulator.ClusterSpec`.

On multi-rack clusters (:meth:`ClusterSpec.with_fabric`) the cost model adds
hierarchical all-reduce (rack-local reduce -> spine all-reduce -> rack
broadcast) and in-network :data:`Collective.SWITCH_AGGREGATION`, where ToR
switches reduce quantized payloads at line rate within bounded aggregation
memory (see :mod:`repro.topology`).
"""

from repro.collectives.ops import ReduceOp, SumOp, SaturatingSumOp, MaxOp, MeanOp
from repro.collectives.cost_model import CollectiveCostModel, CollectiveCost
from repro.collectives.topology import RingTopology, TreeTopology
from repro.collectives.api import (
    Collective,
    CollectiveBackend,
    CollectiveResult,
)

__all__ = [
    "ReduceOp",
    "SumOp",
    "SaturatingSumOp",
    "MaxOp",
    "MeanOp",
    "CollectiveCostModel",
    "CollectiveCost",
    "RingTopology",
    "TreeTopology",
    "Collective",
    "CollectiveBackend",
    "CollectiveResult",
]
