"""Vectorized (matrix) variants of the functional collectives.

The legacy collectives take one vector per worker and, for a ring, split each
vector into ``n`` blocks combined hop by hop -- ``n * (n - 1)`` small NumPy
calls per all-reduce.  The batched backend stacks the workers into one
``(n, d)`` matrix and performs the *same per-element fold order* with
``n - 1`` full-width in-place combines, so non-associative operators (the
paper's saturating sum) produce bit-identical aggregates while the Python
overhead collapses.

The fold orders mirror the legacy implementations exactly:

* :func:`ring_allreduce_matrix` -- block ``j`` starts at worker
  ``(j + 1) % n`` and accumulates around the ring (the
  :func:`~repro.collectives.ring.ring_reduce_scatter` schedule);
* :func:`tree_allreduce_matrix` -- post-order over the same
  :class:`~repro.collectives.topology.TreeTopology`;
* :func:`hierarchical_aggregate_matrix` -- rack-local rank-order folds, then
  rack-order across the spine (the
  :func:`~repro.topology.hierarchical.hierarchical_aggregate` schedule).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.collectives.ops import ReduceOp, SumOp
from repro.collectives.topology import TreeTopology


def ring_block_bounds(num_coordinates: int, num_workers: int) -> list[int]:
    """Boundaries of the ring's ``n`` contiguous blocks (``np.array_split`` layout)."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    base, extra = divmod(num_coordinates, num_workers)
    bounds = [0]
    for block in range(num_workers):
        bounds.append(bounds[-1] + base + (1 if block < extra else 0))
    return bounds


def ring_allreduce_matrix(matrix: np.ndarray, op: ReduceOp | None = None) -> np.ndarray:
    """Ring all-reduce over the rows of ``matrix`` (one row per worker).

    Applies the exact per-hop, per-block order of the legacy
    :func:`~repro.collectives.ring.ring_allreduce`, vectorized: the matrix is
    re-rolled so that, within block ``j``, row ``k`` holds the contribution
    of the worker that reaches the accumulator at hop ``k``; the fold is then
    ``n - 1`` full-width in-place combines.  ``matrix`` is not modified.
    """
    op = op or SumOp()
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D (one row per worker)")
    n, d = matrix.shape
    if n == 1:
        return op.finalize(np.array(matrix[0], copy=True), 1)
    bounds = ring_block_bounds(d, n)
    rolled = np.empty_like(matrix)
    ranks = np.arange(n)
    for j in range(n):
        lo, hi = bounds[j], bounds[j + 1]
        if lo == hi:
            continue
        order = (j + 1 + ranks) % n
        rolled[:, lo:hi] = matrix[order, lo:hi]
    accumulator = np.array(rolled[0], copy=True)
    for hop in range(1, n):
        op.combine_into(accumulator, rolled[hop])
    return op.finalize(accumulator, n)


def tree_allreduce_matrix(matrix: np.ndarray, op: ReduceOp | None = None) -> np.ndarray:
    """Tree all-reduce over the rows of ``matrix``.

    The legacy tree already combines full-width vectors (no blocking), so the
    batched variant runs the identical post-order fold over row views.
    """
    op = op or SumOp()
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D (one row per worker)")
    n = matrix.shape[0]
    topology = TreeTopology(world_size=n)

    def reduce_subtree(rank: int) -> np.ndarray:
        accumulator = np.array(matrix[rank], copy=True)
        for child in topology.children(rank):
            op.combine_into(accumulator, reduce_subtree(child))
        return accumulator

    return op.finalize(reduce_subtree(0), n)


def hierarchical_aggregate_matrix(
    matrix: np.ndarray,
    op: ReduceOp,
    rack_assignment: Sequence[int],
) -> np.ndarray:
    """Rack-local then cross-rack fold over the rows of ``matrix``.

    Mirrors :func:`repro.topology.hierarchical.hierarchical_aggregate` hop
    for hop (rank order within each rack, rack order across the spine), so
    saturating in-network aggregation produces bit-identical results on both
    backends.  ``matrix`` is not modified.
    """
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D (one row per worker)")
    n = matrix.shape[0]
    if n == 0:
        raise ValueError("need at least one worker row")
    if len(rack_assignment) != n:
        raise ValueError(
            f"rack_assignment must have {n} entries, got {len(rack_assignment)}"
        )
    members_by_rack: dict[int, list[int]] = {}
    for rank in range(n):
        members_by_rack.setdefault(rack_assignment[rank], []).append(rank)

    rack_partials: list[np.ndarray] = []
    for rack in sorted(members_by_rack):
        members = members_by_rack[rack]
        partial = np.array(matrix[members[0]], copy=True)
        for rank in members[1:]:
            op.combine_into(partial, matrix[rank])
        rack_partials.append(partial)

    total = rack_partials[0]
    for partial in rack_partials[1:]:
        op.combine_into(total, partial)
    return op.finalize(total, n)
