"""Functional all-gather.

All-gather does not reduce anything: every worker receives every other
worker's payload verbatim and performs the aggregation locally.  This is the
collective that sparsification schemes such as TopK typically rely on
(each worker's selected coordinates differ, so their payloads cannot be summed
in flight), and it is the source of the (n-1)x traffic blow-up the paper
contrasts with all-reduce.
"""

from __future__ import annotations

import numpy as np


def allgather(worker_payloads: list[np.ndarray]) -> list[np.ndarray]:
    """Return the list of payloads every worker ends up holding.

    Payloads may have different shapes (e.g. different numbers of selected
    coordinates per worker), which is precisely why they cannot be reduced by
    the network.
    """
    if not worker_payloads:
        raise ValueError("need at least one worker payload")
    return [np.array(payload, copy=True) for payload in worker_payloads]


def allgather_concat(worker_payloads: list[np.ndarray]) -> np.ndarray:
    """Convenience: the gathered payloads concatenated into one array."""
    gathered = allgather(worker_payloads)
    return np.concatenate([payload.ravel() for payload in gathered])
