"""Unified collective backend: functional result + simulated cost in one call.

:class:`CollectiveBackend` is what the DDP trainer and the experiments talk
to.  Each call takes the per-worker payloads (NumPy arrays) plus the number of
*wire bits per value*, performs the collective functionally, and prices it on
the configured cluster with the alpha-beta cost model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.collectives.allgather import allgather
from repro.collectives.batched import (
    hierarchical_aggregate_matrix,
    ring_allreduce_matrix,
    tree_allreduce_matrix,
)
from repro.collectives.cost_model import CollectiveCost, CollectiveCostModel
from repro.collectives.ops import ReduceOp, SumOp
from repro.collectives.parameter_server import ParameterServer
from repro.collectives.ring import ring_allreduce
from repro.collectives.tree import tree_allreduce
from repro.simulator.cluster import ClusterSpec, paper_testbed
from repro.topology.hierarchical import hierarchical_aggregate


class Collective(enum.Enum):
    """Aggregation schemes the paper discusses (plus in-network aggregation)."""

    RING_ALLREDUCE = "ring_allreduce"
    TREE_ALLREDUCE = "tree_allreduce"
    ALLGATHER = "allgather"
    PARAMETER_SERVER = "parameter_server"
    #: ToR/spine switches reduce quantized payloads in the network
    #: (:meth:`CollectiveCostModel.switch_aggregation`).
    SWITCH_AGGREGATION = "switch_aggregation"

    @property
    def is_allreduce(self) -> bool:
        """Whether this collective reduces payloads in flight."""
        return self in (
            Collective.RING_ALLREDUCE,
            Collective.TREE_ALLREDUCE,
            Collective.SWITCH_AGGREGATION,
        )


@dataclass(frozen=True)
class CollectiveResult:
    """Outcome of one collective invocation.

    Attributes:
        aggregate: The reduced vector every worker holds (all-reduce / PS), or
            None for all-gather, where aggregation happens at the caller.
        gathered: The list of gathered payloads (all-gather only).
        cost: Simulated communication cost.
    """

    aggregate: np.ndarray | None
    gathered: list[np.ndarray] | None
    cost: CollectiveCost


@dataclass(frozen=True)
class SectionedGatherResult:
    """Outcome of a sectioned all-gather (:meth:`CollectiveBackend.allgather_sections`).

    Attributes:
        gathered: Per worker, the tuple of section arrays that worker sent --
            exactly what every worker ends up holding after the gather.
        cost: Simulated communication cost of the whole exchange.
    """

    gathered: list[tuple[np.ndarray, ...]]
    cost: CollectiveCost


class CollectiveBackend:
    """Performs and prices collectives on a simulated cluster."""

    def __init__(self, cluster: ClusterSpec | None = None):
        self.cluster = cluster or paper_testbed()
        self.cost_model = CollectiveCostModel(self.cluster)

    @property
    def world_size(self) -> int:
        """Number of workers participating in every collective."""
        return self.cluster.world_size

    # ------------------------------------------------------------------ #
    def allreduce(
        self,
        worker_vectors: list[np.ndarray],
        *,
        wire_bits_per_value: float,
        op: ReduceOp | None = None,
        collective: Collective = Collective.RING_ALLREDUCE,
    ) -> CollectiveResult:
        """All-reduce the per-worker vectors and price the transfer.

        Args:
            worker_vectors: One equally shaped vector per worker.
            wire_bits_per_value: How many bits one vector element occupies on
                the wire (16 for FP16 payloads, ``b`` for b-bit integers...).
            op: Reduction operator; defaults to a plain sum.
            collective: Ring (default), tree, or in-network switch schedule.
        """
        self._check_world(worker_vectors)
        op = op or SumOp()
        payload_bits = worker_vectors[0].size * wire_bits_per_value
        aggregate = self.reduce_vectors(worker_vectors, op, collective)
        cost = self.allreduce_cost(payload_bits, collective)
        return CollectiveResult(aggregate=aggregate, gathered=None, cost=cost)

    def reduce_vectors(
        self,
        worker_vectors: list[np.ndarray],
        op: ReduceOp,
        collective: Collective,
    ) -> np.ndarray:
        """The functional fold of :meth:`allreduce`, without the pricing.

        Exposed so an execution engine that moves the payloads over a real
        transport (``repro.bridge``) can replay the exact per-hop reduction
        order of the simulated collective -- which matters for non-associative
        (saturating) operators.
        """
        if collective is Collective.RING_ALLREDUCE:
            if self.cluster.has_active_fabric:
                # A topology-aware engine runs the hierarchical schedule on a
                # multi-rack fabric: fold rack-locally, then across racks.
                # The hop order matters for non-associative (saturating) ops,
                # and the cost model prices the same schedule.
                return hierarchical_aggregate(
                    worker_vectors, op, self.cluster.rack_assignment()
                )
            return ring_allreduce(worker_vectors, op)
        if collective is Collective.TREE_ALLREDUCE:
            return tree_allreduce(worker_vectors, op)
        if collective is Collective.SWITCH_AGGREGATION:
            return hierarchical_aggregate(
                worker_vectors, op, self.cluster.rack_assignment()
            )
        raise ValueError(f"{collective} is not an all-reduce collective")

    def allreduce_cost(
        self, payload_bits: float, collective: Collective
    ) -> CollectiveCost:
        """The priced cost of :meth:`allreduce`, without the functional fold."""
        if collective is Collective.RING_ALLREDUCE:
            return self.cost_model.ring_allreduce(payload_bits)
        if collective is Collective.TREE_ALLREDUCE:
            return self.cost_model.tree_allreduce(payload_bits)
        if collective is Collective.SWITCH_AGGREGATION:
            return self.cost_model.switch_aggregation(payload_bits)
        raise ValueError(f"{collective} is not an all-reduce collective")

    def allreduce_matrix(
        self,
        matrix: np.ndarray,
        *,
        wire_bits_per_value: float,
        op: ReduceOp | None = None,
        collective: Collective = Collective.RING_ALLREDUCE,
    ) -> CollectiveResult:
        """All-reduce a stacked ``(n_workers, d)`` matrix (batched backend).

        Functionally identical to :meth:`allreduce` on the matrix's rows --
        the vectorized folds replay the exact per-hop order of the legacy
        collectives, so even non-associative (saturating) operators agree bit
        for bit -- and priced by the same cost-model calls.  The input matrix
        is not modified.
        """
        if matrix.ndim != 2:
            raise ValueError("matrix must be 2-D (one row per worker)")
        if matrix.shape[0] != self.world_size:
            raise ValueError(
                f"expected {self.world_size} worker rows, got {matrix.shape[0]}"
            )
        op = op or SumOp()
        payload_bits = matrix.shape[1] * wire_bits_per_value
        if collective is Collective.RING_ALLREDUCE:
            if self.cluster.has_active_fabric:
                aggregate = hierarchical_aggregate_matrix(
                    matrix, op, self.cluster.rack_assignment()
                )
            else:
                aggregate = ring_allreduce_matrix(matrix, op)
            cost = self.cost_model.ring_allreduce(payload_bits)
        elif collective is Collective.TREE_ALLREDUCE:
            aggregate = tree_allreduce_matrix(matrix, op)
            cost = self.cost_model.tree_allreduce(payload_bits)
        elif collective is Collective.SWITCH_AGGREGATION:
            aggregate = hierarchical_aggregate_matrix(
                matrix, op, self.cluster.rack_assignment()
            )
            cost = self.cost_model.switch_aggregation(payload_bits)
        else:
            raise ValueError(f"{collective} is not an all-reduce collective")
        return CollectiveResult(aggregate=aggregate, gathered=None, cost=cost)

    def allgather(
        self,
        worker_payloads: list[np.ndarray],
        *,
        wire_bits_per_value: float,
    ) -> CollectiveResult:
        """All-gather arbitrary (possibly unequal-sized) per-worker payloads."""
        if len(worker_payloads) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} payloads, got {len(worker_payloads)}"
            )
        gathered = allgather(worker_payloads)
        max_payload_bits = max(p.size for p in worker_payloads) * wire_bits_per_value
        cost = self.cost_model.allgather(max_payload_bits)
        return CollectiveResult(aggregate=None, gathered=gathered, cost=cost)

    def allgather_sections(
        self,
        worker_sections: list[tuple[np.ndarray, ...]],
        *,
        wire_bits_per_section: tuple[float, ...],
    ) -> SectionedGatherResult:
        """All-gather payloads made of heterogeneous sections per worker.

        Sparsification payloads are not one homogeneous array: TopK ships
        32-bit indices next to 16-bit values.  Each worker contributes a tuple
        of section arrays; section ``j`` travels at ``wire_bits_per_section[j]``
        bits per element.  The whole multi-section payload is exchanged as one
        all-gather, so the priced cost equals a single :meth:`allgather` of the
        same total volume (the historical single-array accounting).
        """
        if len(worker_sections) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} payloads, got {len(worker_sections)}"
            )
        num_sections = len(wire_bits_per_section)
        for sections in worker_sections:
            if len(sections) != num_sections:
                raise ValueError(
                    f"every worker must send {num_sections} sections, "
                    f"got {len(sections)}"
                )
        gathered = [
            tuple(np.array(section, copy=True) for section in sections)
            for sections in worker_sections
        ]
        max_payload_bits = max(
            sum(
                section.size * bits
                for section, bits in zip(sections, wire_bits_per_section)
            )
            for sections in worker_sections
        )
        cost = self.cost_model.allgather(max_payload_bits)
        return SectionedGatherResult(gathered=gathered, cost=cost)

    def parameter_server(
        self,
        worker_vectors: list[np.ndarray],
        *,
        wire_bits_per_value: float,
        downlink_bits_per_value: float | None = None,
        op: ReduceOp | None = None,
        num_servers: int = 1,
    ) -> CollectiveResult:
        """Aggregate at a (sharded) parameter server and broadcast the result."""
        self._check_world(worker_vectors)
        server = ParameterServer(num_shards=num_servers)
        aggregate = server.aggregate(worker_vectors, op or SumOp())
        payload_bits = worker_vectors[0].size * wire_bits_per_value
        downlink_bits = None
        if downlink_bits_per_value is not None:
            downlink_bits = worker_vectors[0].size * downlink_bits_per_value
        cost = self.cost_model.parameter_server(
            payload_bits, downlink_bits=downlink_bits, num_servers=num_servers
        )
        return CollectiveResult(aggregate=aggregate, gathered=None, cost=cost)

    # ------------------------------------------------------------------ #
    def _check_world(self, worker_vectors: list[np.ndarray]) -> None:
        if len(worker_vectors) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} worker vectors, got {len(worker_vectors)}"
            )
