"""Functional tree all-reduce.

Contributions are combined bottom-up along a binary tree (post-order), so --
as in the ring implementation -- a non-associative operator such as the
paper's saturating sum is applied per hop in a realistic order.  The root's
result is then broadcast back down unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.ops import ReduceOp, SumOp
from repro.collectives.topology import TreeTopology


def tree_allreduce(
    worker_vectors: list[np.ndarray], op: ReduceOp | None = None
) -> np.ndarray:
    """Tree all-reduce: every worker obtains the reduced vector."""
    op = op or SumOp()
    if not worker_vectors:
        raise ValueError("need at least one worker vector")
    shape = worker_vectors[0].shape
    for vec in worker_vectors[1:]:
        if vec.shape != shape:
            raise ValueError("all worker vectors must have the same shape")

    topology = TreeTopology(world_size=len(worker_vectors))

    def reduce_subtree(rank: int) -> np.ndarray:
        accumulator = np.array(worker_vectors[rank], copy=True)
        for child in topology.children(rank):
            accumulator = op.combine(accumulator, reduce_subtree(child))
        return accumulator

    aggregate = reduce_subtree(0)
    return op.finalize(aggregate, len(worker_vectors))
