"""Functional ring all-reduce and reduce-scatter.

The simulation follows the actual block schedule of a ring all-reduce: each
worker's vector is split into ``n`` blocks; block ``j`` travels around the
ring accumulating contributions one hop at a time, so a non-associative
reduction operator (the paper's saturating sum) is applied in exactly the
per-hop order a real ring would use.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.ops import ReduceOp, SumOp


def split_blocks(vector: np.ndarray, num_blocks: int) -> list[np.ndarray]:
    """Split ``vector`` into ``num_blocks`` nearly equal contiguous blocks."""
    if num_blocks < 1:
        raise ValueError("num_blocks must be >= 1")
    return [np.asarray(block) for block in np.array_split(vector, num_blocks)]


def ring_reduce_scatter(
    worker_vectors: list[np.ndarray], op: ReduceOp | None = None
) -> list[np.ndarray]:
    """Reduce-scatter over a ring: worker ``j`` ends up with reduced block ``j``.

    Block ``j`` starts at worker ``(j + 1) % n`` and is combined with each
    successive worker's local block while travelling around the ring,
    finishing at worker ``j``.
    """
    op = op or SumOp()
    _validate_inputs(worker_vectors)
    n = len(worker_vectors)
    blocks_per_worker = [split_blocks(vec, n) for vec in worker_vectors]

    reduced_blocks: list[np.ndarray] = []
    for block_index in range(n):
        start = (block_index + 1) % n
        accumulator = np.array(blocks_per_worker[start][block_index], copy=True)
        for hop in range(1, n):
            rank = (start + hop) % n
            accumulator = op.combine(accumulator, blocks_per_worker[rank][block_index])
        reduced_blocks.append(accumulator)
    return reduced_blocks


def ring_allreduce(
    worker_vectors: list[np.ndarray], op: ReduceOp | None = None
) -> np.ndarray:
    """Ring all-reduce: every worker obtains the full reduced vector.

    The all-gather phase only copies the already-reduced blocks, so the result
    is the concatenation of the reduce-scatter output (finalised by the
    operator, e.g. divided by n for a mean).
    """
    op = op or SumOp()
    _validate_inputs(worker_vectors)
    reduced_blocks = ring_reduce_scatter(worker_vectors, op)
    aggregate = np.concatenate(reduced_blocks) if len(reduced_blocks) > 1 else reduced_blocks[0]
    return op.finalize(aggregate, len(worker_vectors))


def _validate_inputs(worker_vectors: list[np.ndarray]) -> None:
    if not worker_vectors:
        raise ValueError("need at least one worker vector")
    length = worker_vectors[0].shape
    for vec in worker_vectors[1:]:
        if vec.shape != length:
            raise ValueError("all worker vectors must have the same shape")
