"""Logical topologies used by the collective algorithms.

NCCL builds rings and trees over the physical cluster; the paper's argument
about all-reduce scalability rests on the structure of those schedules (no
many-to-one hotspots, O(1) or O(log n) rounds of bounded-size messages).
These classes describe the logical schedule; the cost model consults the
physical :class:`~repro.simulator.ClusterSpec` to price each hop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.cluster import ClusterSpec


@dataclass(frozen=True)
class RingTopology:
    """A directed ring over all workers, in rank order.

    Rank r sends to ``(r + 1) % n`` and receives from ``(r - 1) % n``.
    """

    world_size: int

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ValueError("world_size must be >= 1")

    def next_rank(self, rank: int) -> int:
        """The downstream neighbour of ``rank``."""
        self._check(rank)
        return (rank + 1) % self.world_size

    def prev_rank(self, rank: int) -> int:
        """The upstream neighbour of ``rank``."""
        self._check(rank)
        return (rank - 1) % self.world_size

    def hops(self) -> list[tuple[int, int]]:
        """All (sender, receiver) pairs in the ring."""
        return [(r, self.next_rank(r)) for r in range(self.world_size)]

    def crosses_nodes(self, cluster: ClusterSpec) -> bool:
        """Whether any hop of the ring traverses the inter-node network."""
        if cluster.world_size != self.world_size:
            raise ValueError("cluster world size does not match topology")
        if self.world_size == 1:
            return False
        return any(not cluster.same_node(a, b) for a, b in self.hops())

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range")


@dataclass(frozen=True)
class TreeTopology:
    """A binary reduction tree over all workers, rooted at rank 0.

    Worker r's parent is ``(r - 1) // 2``; the reduce phase walks leaves to
    root and the broadcast phase walks root to leaves.
    """

    world_size: int

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ValueError("world_size must be >= 1")

    def parent(self, rank: int) -> int | None:
        """Parent of ``rank`` in the tree, or None for the root."""
        self._check(rank)
        if rank == 0:
            return None
        return (rank - 1) // 2

    def children(self, rank: int) -> list[int]:
        """Children of ``rank`` in the tree (zero, one, or two)."""
        self._check(rank)
        kids = [2 * rank + 1, 2 * rank + 2]
        return [k for k in kids if k < self.world_size]

    def depth(self) -> int:
        """Number of levels below the root (0 for a single worker)."""
        depth = 0
        frontier = [0]
        while True:
            next_frontier = [c for r in frontier for c in self.children(r)]
            if not next_frontier:
                return depth
            frontier = next_frontier
            depth += 1

    def reduce_order(self) -> list[int]:
        """Ranks in the order their contribution reaches the root (post-order)."""
        order: list[int] = []

        def visit(rank: int) -> None:
            for child in self.children(rank):
                visit(child)
            order.append(rank)

        visit(0)
        return order

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range")
