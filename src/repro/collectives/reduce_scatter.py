"""Reduce-scatter entry point.

The ring all-reduce is built from a reduce-scatter followed by an all-gather;
this module exposes the reduce-scatter half on its own for callers (and
tests) that want the per-block reduced result, e.g. to model schemes that
shard the optimizer state.
"""

from repro.collectives.ring import ring_reduce_scatter, split_blocks

__all__ = ["ring_reduce_scatter", "split_blocks"]
