"""Functional parameter-server aggregation.

A (possibly sharded) parameter server receives every worker's payload,
reduces them centrally with full-width arithmetic, and broadcasts the result.
Because the PS is the final destination of the aggregation it can always
"allocate more bits on the server to prevent overflows" (paper section 3.2.1)
-- which is why quantization schemes like THC were originally designed for
this architecture and why making them all-reduce compatible needs extra work.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.ops import ReduceOp, SumOp


class ParameterServer:
    """A centralised aggregator over ``num_shards`` server processes.

    Sharding splits the gradient coordinate space evenly across servers (the
    "co-located PS" mode the paper mentions reduces per-node load the same
    way); it does not change the aggregate, only the cost model.
    """

    def __init__(self, num_shards: int = 1):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards

    def aggregate(
        self, worker_vectors: list[np.ndarray], op: ReduceOp | None = None
    ) -> np.ndarray:
        """Reduce all worker vectors at the server and return the aggregate."""
        op = op or SumOp()
        if not worker_vectors:
            raise ValueError("need at least one worker vector")
        shape = worker_vectors[0].shape
        for vec in worker_vectors[1:]:
            if vec.shape != shape:
                raise ValueError("all worker vectors must have the same shape")
        accumulator = np.array(worker_vectors[0], copy=True)
        for vec in worker_vectors[1:]:
            accumulator = op.combine(accumulator, vec)
        return op.finalize(accumulator, len(worker_vectors))
