"""Utility: the paper's headline quantity.

"We refer to the TTA improvement over this FP16 baseline as a method's
*utility*."  A scheme has positive utility at a target only if it reaches
that target faster than FP16 communication does; a scheme that beats FP32 but
not FP16 -- the situation the paper repeatedly demonstrates -- has negative
utility and should not be considered a win.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tta import TTACurve


@dataclass(frozen=True)
class UtilityReport:
    """Utility of one scheme against a baseline, across accuracy targets.

    Attributes:
        scheme_label: Name of the evaluated scheme.
        baseline_label: Name of the baseline curve (normally the FP16 baseline).
        targets: The accuracy/perplexity targets examined.
        speedups: For each target, ``baseline_time / scheme_time`` (>1 means
            the scheme is faster), or None where either curve never reaches it.
        unreachable_targets: Targets the *scheme* never reaches even though
            the baseline does -- the accuracy-degradation failure mode.
    """

    scheme_label: str
    baseline_label: str
    targets: tuple[float, ...]
    speedups: tuple[float | None, ...]
    unreachable_targets: tuple[float, ...]

    @property
    def has_positive_utility(self) -> bool:
        """True if the scheme beats the baseline on at least one target and
        never falls short of a target the baseline reaches."""
        if self.unreachable_targets:
            return False
        achieved = [s for s in self.speedups if s is not None]
        return bool(achieved) and max(achieved) > 1.0

    def mean_speedup(self) -> float | None:
        """Geometric-mean speedup over the targets both curves reach."""
        achieved = [s for s in self.speedups if s is not None and s > 0]
        if not achieved:
            return None
        return float(np.exp(np.mean(np.log(achieved))))


def default_targets(baseline: TTACurve, count: int = 5, span: float = 0.9) -> list[float]:
    """Accuracy targets spread between the baseline's early and final values.

    The paper suggests focusing on "accuracies close to the accuracy attained
    by an uncompressed baseline"; the returned targets cover the last
    ``span`` fraction of the baseline's improvement, ending at its best value.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if not 0.0 < span <= 1.0:
        raise ValueError("span must be in (0, 1]")
    start_value = float(baseline.values[0])
    best = baseline.best_value()
    low = best - span * (best - start_value)
    return list(np.linspace(low, best, count))


def compute_utility(
    scheme: TTACurve,
    baseline: TTACurve,
    targets: list[float] | None = None,
) -> UtilityReport:
    """Compare a scheme's TTA curve against the (FP16) baseline curve.

    Args:
        scheme: The evaluated compression scheme's curve.
        baseline: The baseline curve (the paper insists this be FP16, not FP32).
        targets: Metric targets to evaluate at; defaults to
            :func:`default_targets` derived from the baseline curve.
    """
    if scheme.improves != baseline.improves:
        raise ValueError("scheme and baseline must use the same metric direction")
    if targets is None:
        targets = default_targets(baseline)

    speedups: list[float | None] = []
    unreachable: list[float] = []
    for target in targets:
        baseline_time = baseline.time_to_target(target)
        scheme_time = scheme.time_to_target(target)
        if baseline_time is not None and scheme_time is None:
            unreachable.append(target)
            speedups.append(None)
        elif baseline_time is None or scheme_time is None:
            speedups.append(None)
        elif scheme_time == 0:
            speedups.append(float("inf"))
        else:
            speedups.append(baseline_time / scheme_time)

    return UtilityReport(
        scheme_label=scheme.label,
        baseline_label=baseline.label,
        targets=tuple(targets),
        speedups=tuple(speedups),
        unreachable_targets=tuple(unreachable),
    )
