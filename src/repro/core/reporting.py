"""Plain-text rendering of tables and TTA curves.

The benchmark harness prints the same rows and series the paper's tables and
figures report; these helpers keep that output consistent and readable in a
terminal or a CI log.
"""

from __future__ import annotations

from repro.core.tta import TTACurve


def format_table(rows: list[list[str]], *, title: str | None = None) -> str:
    """Render rows of strings as an aligned plain-text table.

    The first row is treated as the header.
    """
    if not rows:
        raise ValueError("need at least one row")
    num_columns = len(rows[0])
    for row in rows:
        if len(row) != num_columns:
            raise ValueError("all rows must have the same number of columns")

    widths = [max(len(str(row[col])) for row in rows) for col in range(num_columns)]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    for index, row in enumerate(rows):
        cells = [str(cell).ljust(width) for cell, width in zip(row, widths)]
        lines.append(" | ".join(cells))
        if index == 0:
            lines.append(separator)
    return "\n".join(lines)


def format_float_table(
    header: list[str], rows: list[list[object]], *, title: str | None = None, precision: int = 4
) -> str:
    """Like :func:`format_table` but formats numeric cells with fixed precision."""

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}g}"
        return str(cell)

    string_rows = [header] + [[render(cell) for cell in row] for row in rows]
    return format_table(string_rows, title=title)


def render_curves(
    curves: list[TTACurve],
    *,
    width: int = 72,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Render TTA curves as ASCII art (time on x, metric on y).

    Intended for benchmark logs; each curve is drawn with a distinct marker
    and listed in a legend.
    """
    if not curves:
        raise ValueError("need at least one curve")
    if width < 16 or height < 4:
        raise ValueError("plot area is too small")

    markers = "*o+x#@%&"
    min_time = min(float(curve.times.min()) for curve in curves)
    max_time = max(float(curve.times.max()) for curve in curves)
    min_value = min(float(curve.values.min()) for curve in curves)
    max_value = max(float(curve.values.max()) for curve in curves)
    time_span = max(max_time - min_time, 1e-12)
    value_span = max(max_value - min_value, 1e-12)

    grid = [[" "] * width for _ in range(height)]
    for curve_index, curve in enumerate(curves):
        marker = markers[curve_index % len(markers)]
        for time, value in zip(curve.times, curve.values):
            col = int((time - min_time) / time_span * (width - 1))
            row = int((value - min_value) / value_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{max_value:.4g}".rjust(10) + " +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{min_value:.4g}".rjust(10) + " +" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{min_time:.3g}s".ljust(width // 2) + f"{max_time:.3g}s".rjust(width // 2)
    )
    for curve_index, curve in enumerate(curves):
        lines.append(f"  {markers[curve_index % len(markers)]} {curve.label}")
    return "\n".join(lines)
