"""Structured survey of prior gradient-compression systems (Table 1).

Table 1 of the paper assesses eight prior systems against five criteria:
whether they compare with the stronger FP16 baseline, whether compression
error informs the system design, how many of their tasks get an end-to-end
evaluation, whether higher throughput translated to better time-to-accuracy,
and whether new compression algorithms are all-reduce compatible.

The data is encoded here so the table can be regenerated, filtered, and
extended programmatically; the citation keys follow the paper's bibliography.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Criterion(enum.Enum):
    """The five assessment criteria of Table 1."""

    FP16_BASELINE = "Comparing with the stronger FP16 baseline"
    ERROR_AWARE_DESIGN = "Considering compression error for system design"
    END_TO_END_EVALUATION = "Evaluation on end-to-end performance (in how many tasks)"
    THROUGHPUT_IMPLIES_TTA = "Higher throughput results in better time to accuracy"
    ALLREDUCE_COMPATIBILITY = "All-reduce compatibility for new compression algorithms"


class Verdict(enum.Enum):
    """Possible cell values in the assessment table."""

    YES = "yes"
    NO = "no"
    NOT_APPLICABLE = "n/a"

    def symbol(self) -> str:
        """The symbol used in the rendered table."""
        return {"yes": "Y", "no": "X", "n/a": "N/A"}[self.value]


@dataclass(frozen=True)
class PriorSystemAssessment:
    """One prior system's row in Table 1.

    Attributes:
        citation: The paper's reference number for the system.
        name: A human-readable identifier of the system.
        compression_family: Sparsification / quantization / low-rank / mixed.
        fp16_baseline: Whether the system was compared against FP16.
        error_aware_design: Whether compression error informed the design.
        end_to_end_tasks: (evaluated, total) tasks with end-to-end results.
        throughput_implies_tta: Whether higher throughput gave better TTA.
        allreduce_compatible: Whether new algorithms are all-reduce compatible.
    """

    citation: str
    name: str
    compression_family: str
    fp16_baseline: Verdict
    error_aware_design: Verdict
    end_to_end_tasks: tuple[int, int]
    throughput_implies_tta: Verdict
    allreduce_compatible: Verdict

    def __post_init__(self) -> None:
        evaluated, total = self.end_to_end_tasks
        if evaluated < 0 or total < 0 or evaluated > total:
            raise ValueError("end_to_end_tasks must satisfy 0 <= evaluated <= total")

    def end_to_end_fraction(self) -> float:
        """Fraction of the system's tasks that received end-to-end evaluation."""
        evaluated, total = self.end_to_end_tasks
        if total == 0:
            return 0.0
        return evaluated / total


#: The eight systems assessed in Table 1, in the paper's column order.
PRIOR_SYSTEMS: tuple[PriorSystemAssessment, ...] = (
    PriorSystemAssessment(
        citation="[11]",
        name="Agarwal et al. (On the utility of gradient compression)",
        compression_family="survey",
        fp16_baseline=Verdict.NO,
        error_aware_design=Verdict.NOT_APPLICABLE,
        end_to_end_tasks=(0, 3),
        throughput_implies_tta=Verdict.NOT_APPLICABLE,
        allreduce_compatible=Verdict.NOT_APPLICABLE,
    ),
    PriorSystemAssessment(
        citation="[14]",
        name="HiPress / CaSync (Bai et al.)",
        compression_family="mixed",
        fp16_baseline=Verdict.NO,
        error_aware_design=Verdict.NO,
        end_to_end_tasks=(2, 8),
        throughput_implies_tta=Verdict.YES,
        allreduce_compatible=Verdict.NOT_APPLICABLE,
    ),
    PriorSystemAssessment(
        citation="[23]",
        name="OmniReduce (Fei et al.)",
        compression_family="sparsification",
        fp16_baseline=Verdict.NO,
        error_aware_design=Verdict.YES,
        end_to_end_tasks=(1, 6),
        throughput_implies_tta=Verdict.YES,
        allreduce_compatible=Verdict.NO,
    ),
    PriorSystemAssessment(
        citation="[30]",
        name="Parallax (Kim et al.)",
        compression_family="sparsification",
        fp16_baseline=Verdict.NO,
        error_aware_design=Verdict.NOT_APPLICABLE,
        end_to_end_tasks=(3, 4),
        throughput_implies_tta=Verdict.YES,
        allreduce_compatible=Verdict.YES,
    ),
    PriorSystemAssessment(
        citation="[32]",
        name="Lossless homomorphic compression (Li et al.)",
        compression_family="sparsification",
        fp16_baseline=Verdict.NO,
        error_aware_design=Verdict.YES,
        end_to_end_tasks=(4, 4),
        throughput_implies_tta=Verdict.NO,
        allreduce_compatible=Verdict.YES,
    ),
    PriorSystemAssessment(
        citation="[34]",
        name="THC (Li et al.)",
        compression_family="quantization",
        fp16_baseline=Verdict.NO,
        error_aware_design=Verdict.YES,
        end_to_end_tasks=(3, 7),
        throughput_implies_tta=Verdict.YES,
        allreduce_compatible=Verdict.NO,
    ),
    PriorSystemAssessment(
        citation="[60]",
        name="Espresso (Wang et al.)",
        compression_family="mixed",
        fp16_baseline=Verdict.NO,
        error_aware_design=Verdict.NO,
        end_to_end_tasks=(4, 4),
        throughput_implies_tta=Verdict.YES,
        allreduce_compatible=Verdict.NOT_APPLICABLE,
    ),
    PriorSystemAssessment(
        citation="[62]",
        name="CUPCAKE (Wang et al.)",
        compression_family="mixed",
        fp16_baseline=Verdict.NO,
        error_aware_design=Verdict.NO,
        end_to_end_tasks=(3, 3),
        throughput_implies_tta=Verdict.NO,
        allreduce_compatible=Verdict.NO,
    ),
)


def assessment_table() -> list[list[str]]:
    """Table 1 as rows of strings: criteria down the side, systems across."""
    header = ["Criterion"] + [system.citation for system in PRIOR_SYSTEMS]
    rows = [header]
    rows.append(
        [Criterion.FP16_BASELINE.value]
        + [system.fp16_baseline.symbol() for system in PRIOR_SYSTEMS]
    )
    rows.append(
        [Criterion.ERROR_AWARE_DESIGN.value]
        + [system.error_aware_design.symbol() for system in PRIOR_SYSTEMS]
    )
    rows.append(
        [Criterion.END_TO_END_EVALUATION.value]
        + [f"{e}/{t}" for e, t in (system.end_to_end_tasks for system in PRIOR_SYSTEMS)]
    )
    rows.append(
        [Criterion.THROUGHPUT_IMPLIES_TTA.value]
        + [system.throughput_implies_tta.symbol() for system in PRIOR_SYSTEMS]
    )
    rows.append(
        [Criterion.ALLREDUCE_COMPATIBILITY.value]
        + [system.allreduce_compatible.symbol() for system in PRIOR_SYSTEMS]
    )
    return rows


def systems_lacking(criterion: Criterion) -> list[PriorSystemAssessment]:
    """Prior systems that fail a given criterion (verdict NO)."""
    field_by_criterion = {
        Criterion.FP16_BASELINE: "fp16_baseline",
        Criterion.ERROR_AWARE_DESIGN: "error_aware_design",
        Criterion.THROUGHPUT_IMPLIES_TTA: "throughput_implies_tta",
        Criterion.ALLREDUCE_COMPATIBILITY: "allreduce_compatible",
    }
    if criterion not in field_by_criterion:
        raise ValueError(f"criterion {criterion} is not a yes/no criterion")
    field = field_by_criterion[criterion]
    return [system for system in PRIOR_SYSTEMS if getattr(system, field) is Verdict.NO]
