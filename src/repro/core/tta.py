"""Time-to-accuracy (TTA) curves.

The paper argues that TTA -- for every accuracy target, the training time
needed to reach it -- is the end-to-end metric that gradient compression
should be designed for and judged by.  Crucially it is a *curve*, not a
number: curves of different schemes can cross, so a single arbitrarily chosen
time or accuracy target can make either scheme look better.

:class:`TTACurve` holds one scheme's metric-versus-time trajectory (after the
rolling average the paper applies) and answers the questions the paper's
figures answer: how long to a given target, what is reached by a given time,
where do two curves cross, and which targets a scheme never reaches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def rolling_average(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing rolling average with a window of ``window`` samples.

    The first ``window - 1`` outputs average over the shorter available
    prefix, so the result has the same length as the input (matching how the
    paper smooths its TTA plots over a fixed number of rounds).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("values must be 1-D")
    if window <= 0:
        raise ValueError("window must be positive")
    if window == 1 or values.size == 0:
        return values.copy()
    cumulative = np.cumsum(values)
    result = np.empty_like(values)
    for index in range(values.size):
        start = max(0, index - window + 1)
        total = cumulative[index] - (cumulative[start - 1] if start > 0 else 0.0)
        result[index] = total / (index - start + 1)
    return result


@dataclass(frozen=True)
class TTACurve:
    """One scheme's (time, metric) trajectory.

    Attributes:
        label: Scheme name shown in reports.
        times: Simulated training time of each evaluation point, seconds,
            strictly increasing.
        values: Goal-metric value at each point (already smoothed if desired).
        improves: "up" if larger values are better (accuracy), "down" if
            smaller values are better (perplexity).
    """

    label: str
    times: np.ndarray
    values: np.ndarray
    improves: str = "up"

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=np.float64)
        values = np.asarray(self.values, dtype=np.float64)
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)
        if times.ndim != 1 or values.ndim != 1 or times.size != values.size:
            raise ValueError("times and values must be 1-D arrays of equal length")
        if times.size == 0:
            raise ValueError("a TTA curve needs at least one point")
        if np.any(np.diff(times) < 0):
            raise ValueError("times must be non-decreasing")
        if self.improves not in ("up", "down"):
            raise ValueError("improves must be 'up' or 'down'")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_history(cls, history, *, window: int = 1) -> "TTACurve":
        """Build a curve from a :class:`~repro.training.TrainingHistory`.

        Args:
            history: The training history to convert.
            window: Rolling-average window, in evaluation points.
        """
        values = rolling_average(history.metric_values(), window)
        return cls(
            label=history.scheme_name,
            times=history.times(),
            values=values,
            improves=history.metric_improves,
        )

    def smoothed(self, window: int) -> "TTACurve":
        """A copy of this curve with a rolling average applied."""
        return TTACurve(
            label=self.label,
            times=self.times,
            values=rolling_average(self.values, window),
            improves=self.improves,
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def _reached(self, target: float) -> np.ndarray:
        if self.improves == "up":
            return self.values >= target
        return self.values <= target

    def best_value(self) -> float:
        """The best metric value the run ever reaches."""
        return float(self.values.max() if self.improves == "up" else self.values.min())

    def final_value(self) -> float:
        """The metric value at the end of the run."""
        return float(self.values[-1])

    def time_to_target(self, target: float) -> float | None:
        """Training time needed to first reach ``target``, or None if never.

        This is the "TTA at target" lookup; the paper stresses that a scheme
        may simply never reach targets close to the uncompressed baseline's
        final accuracy, in which case the answer is None rather than a number.
        """
        reached = self._reached(target)
        if not reached.any():
            return None
        return float(self.times[int(np.argmax(reached))])

    def value_at_time(self, time_seconds: float) -> float:
        """Metric value attained by ``time_seconds`` (step interpolation)."""
        if time_seconds < self.times[0]:
            return float(self.values[0])
        index = int(np.searchsorted(self.times, time_seconds, side="right") - 1)
        return float(self.values[index])

    def speedup_over(self, other: "TTACurve", target: float) -> float | None:
        """How much faster this curve reaches ``target`` than ``other``.

        Returns ``other_time / self_time`` (>1 means this scheme is faster),
        or None if either curve never reaches the target.
        """
        if self.improves != other.improves:
            raise ValueError("cannot compare curves with different metric directions")
        own_time = self.time_to_target(target)
        other_time = other.time_to_target(target)
        if own_time is None or other_time is None:
            return None
        if own_time == 0:
            return float("inf")
        return other_time / own_time

    def crossings_with(self, other: "TTACurve") -> list[float]:
        """Times at which this curve and ``other`` swap which one is ahead.

        The paper highlights that TTA curves can intersect, making "which
        scheme is better" target-dependent; this method finds those
        intersection times on a merged time grid.
        """
        if self.improves != other.improves:
            raise ValueError("cannot compare curves with different metric directions")
        grid = np.unique(np.concatenate([self.times, other.times]))
        if grid.size < 2:
            return []
        own = np.array([self.value_at_time(t) for t in grid])
        theirs = np.array([other.value_at_time(t) for t in grid])
        difference = own - theirs if self.improves == "up" else theirs - own
        signs = np.sign(difference)
        crossings = []
        for index in range(1, grid.size):
            if signs[index] != 0 and signs[index - 1] != 0 and signs[index] != signs[index - 1]:
                crossings.append(float(grid[index]))
        return crossings

    def reachable_targets(self, targets: list[float]) -> dict[float, float | None]:
        """Time-to-target for a list of targets (None where unreachable)."""
        return {target: self.time_to_target(target) for target in targets}
