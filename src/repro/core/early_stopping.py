"""Early stopping: the convergence criterion used to end training runs.

The paper terminates each training run "upon model convergence" using an
early-stopping rule and then reports the full TTA curve.  The criterion here
is the standard patience-based one: stop when the goal metric has not
improved by at least ``min_delta`` for ``patience`` consecutive evaluations.
"""

from __future__ import annotations


class EarlyStopping:
    """Patience-based early stopping on a stream of metric observations.

    Args:
        patience: Number of consecutive non-improving evaluations tolerated
            before stopping.
        min_delta: Minimum improvement that counts as progress.
        mode: "up" if larger metric values are better, "down" otherwise.

    The object is also a valid
    :class:`~repro.training.ddp.StoppingCriterion` for the DDP trainer.
    """

    def __init__(self, patience: int = 10, min_delta: float = 0.0, mode: str = "up"):
        if patience <= 0:
            raise ValueError("patience must be positive")
        if min_delta < 0:
            raise ValueError("min_delta must be non-negative")
        if mode not in ("up", "down"):
            raise ValueError("mode must be 'up' or 'down'")
        self.patience = patience
        self.min_delta = min_delta
        self.mode = mode
        self._best: float | None = None
        self._stale_evaluations = 0
        self._stopped = False

    @property
    def best(self) -> float | None:
        """Best metric value observed so far (None before the first update)."""
        return self._best

    @property
    def stopped(self) -> bool:
        """Whether the criterion has already fired."""
        return self._stopped

    def _improved(self, value: float) -> bool:
        if self._best is None:
            return True
        if self.mode == "up":
            return value > self._best + self.min_delta
        return value < self._best - self.min_delta

    def update(self, value: float) -> bool:
        """Record one evaluation; return True if training should stop now."""
        if self._improved(value):
            self._best = value
            self._stale_evaluations = 0
        else:
            self._stale_evaluations += 1
            if self._stale_evaluations >= self.patience:
                self._stopped = True
        return self._stopped

    def reset(self) -> None:
        """Forget all observations (reuse the object for another run)."""
        self._best = None
        self._stale_evaluations = 0
        self._stopped = False
