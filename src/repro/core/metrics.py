"""Compression-error and volume metrics.

The paper recommends the vector normalized mean squared error (vNMSE) as a
cheap proxy metric during design and parameter tuning: it measures "the
compression error between the true gradients' average and its estimate from
the compressed gradients", and correlates (imperfectly -- that is the point of
TTA) with convergence speed.
"""

from __future__ import annotations

import numpy as np


def vnmse(estimate: np.ndarray, true_mean: np.ndarray) -> float:
    """Vector normalized mean squared error of an aggregated-gradient estimate.

    Defined as ``||estimate - true_mean||^2 / ||true_mean||^2``: the squared
    error of the estimate normalised by the energy of the true mean gradient.
    A lossless aggregation has vNMSE 0; an estimate of all zeros has vNMSE 1.

    Raises:
        ValueError: If shapes differ or the true mean has zero norm.
    """
    estimate = np.asarray(estimate, dtype=np.float64)
    true_mean = np.asarray(true_mean, dtype=np.float64)
    if estimate.shape != true_mean.shape:
        raise ValueError("estimate and true_mean must have the same shape")
    denominator = float(np.sum(true_mean * true_mean))
    if denominator == 0.0:
        raise ValueError("true_mean has zero norm; vNMSE is undefined")
    difference = estimate - true_mean
    return float(np.sum(difference * difference)) / denominator


def normalized_mean_squared_error(estimate: np.ndarray, reference: np.ndarray) -> float:
    """Alias of :func:`vnmse` with the generic NMSE name."""
    return vnmse(estimate, reference)


def cosine_similarity(estimate: np.ndarray, reference: np.ndarray) -> float:
    """Cosine of the angle between the estimate and the reference gradient.

    A secondary diagnostic: biased compressors (TopK without error feedback)
    can have small vNMSE yet a systematically rotated direction.
    """
    estimate = np.asarray(estimate, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if estimate.shape != reference.shape:
        raise ValueError("estimate and reference must have the same shape")
    norm_product = float(np.linalg.norm(estimate) * np.linalg.norm(reference))
    if norm_product == 0.0:
        raise ValueError("cosine similarity undefined for zero vectors")
    return float(np.dot(estimate, reference)) / norm_product


def compression_ratio(bits_per_coordinate: float, baseline_bits: float = 32.0) -> float:
    """How many times less data a scheme sends than a ``baseline_bits`` format.

    The paper cautions that this metric alone says nothing about end-to-end
    utility; it is provided because prior work reports it.
    """
    if bits_per_coordinate <= 0:
        raise ValueError("bits_per_coordinate must be positive")
    if baseline_bits <= 0:
        raise ValueError("baseline_bits must be positive")
    return baseline_bits / bits_per_coordinate


def aggregate_vnmse_over_rounds(
    estimates: list[np.ndarray], true_means: list[np.ndarray]
) -> float:
    """Mean vNMSE over several aggregation rounds (the Table 4/7 statistic)."""
    if len(estimates) != len(true_means) or not estimates:
        raise ValueError("need matching, non-empty lists of estimates and true means")
    return float(np.mean([vnmse(e, t) for e, t in zip(estimates, true_means)]))
