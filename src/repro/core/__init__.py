"""The utility-centric evaluation framework -- the paper's core contribution.

The paper's thesis is methodological: gradient compression must be designed
for and evaluated by *end-to-end utility*, which it defines as the
time-to-accuracy (TTA) improvement over the strong FP16 baseline, with the
vector normalized mean squared error (vNMSE) as a cheap proxy during design.
This package implements that framework:

* :mod:`repro.core.metrics` -- vNMSE, compression ratio and related error
  metrics;
* :mod:`repro.core.tta` -- TTA curves: rolling averages, time-to-target
  queries, curve crossings, and the comparison logic the paper advocates;
* :mod:`repro.core.early_stopping` -- the convergence criterion used to
  decide when a training run has converged;
* :mod:`repro.core.utility` -- utility = TTA improvement over the FP16
  baseline, the paper's headline quantity;
* :mod:`repro.core.evaluation` -- an orchestrator that runs a scheme
  end-to-end on a workload and produces its TTA curve;
* :mod:`repro.core.assessment` -- the structured survey of prior systems
  behind Table 1;
* :mod:`repro.core.reporting` -- plain-text table and curve rendering used by
  the experiment drivers and benchmarks.
"""

from repro.core.metrics import (
    compression_ratio,
    cosine_similarity,
    normalized_mean_squared_error,
    vnmse,
)
from repro.core.tta import TTACurve, rolling_average
from repro.core.early_stopping import EarlyStopping
from repro.core.resource_metrics import (
    ResourceModel,
    cost_to_accuracy,
    cost_to_target,
    energy_to_target_joules,
    power_to_accuracy,
)
from repro.core.utility import UtilityReport, compute_utility
from repro.core.evaluation import EndToEndResult, run_end_to_end
from repro.core.assessment import PRIOR_SYSTEMS, PriorSystemAssessment, assessment_table
from repro.core.reporting import format_table, render_curves

__all__ = [
    "compression_ratio",
    "cosine_similarity",
    "normalized_mean_squared_error",
    "vnmse",
    "TTACurve",
    "rolling_average",
    "EarlyStopping",
    "ResourceModel",
    "cost_to_accuracy",
    "cost_to_target",
    "energy_to_target_joules",
    "power_to_accuracy",
    "UtilityReport",
    "compute_utility",
    "EndToEndResult",
    "run_end_to_end",
    "PRIOR_SYSTEMS",
    "PriorSystemAssessment",
    "assessment_table",
    "format_table",
    "render_curves",
]
