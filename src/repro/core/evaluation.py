"""End-to-end evaluation orchestrator.

This module wires the whole system together the way the paper's case study
does: pick a workload (BERT-large-like or VGG19-like), pick an aggregation
scheme by name, train to convergence on the simulated cluster, and come back
with the TTA curve and the utility against the FP16 baseline.

It is the highest-level entry point of the library; the examples and the
figure benchmarks are thin wrappers around :func:`run_end_to_end` and
:func:`compare_schemes`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.base import AggregationScheme
from repro.compression.kernels import KernelBackend
from repro.compression.registry import configure_scheme_for_shapes, make_scheme
from repro.compression.spec import SpecSyntaxError, parse_spec
from repro.core.early_stopping import EarlyStopping
from repro.core.tta import TTACurve
from repro.core.utility import UtilityReport
from repro.simulator.cluster import ClusterSpec, paper_testbed
from repro.simulator.recovery import RecoveryPolicy
from repro.simulator.scenario import Scenario
from repro.training.adaptive import AdaptiveController
from repro.training.data import SyntheticTeacherDataset
from repro.training.ddp import DDPTrainer, TrainingHistory
from repro.training.models import MLPClassifier
from repro.training.optimizer import SGD, LearningRateSchedule
from repro.training.workloads import WorkloadSpec

#: Scheme families the paper runs with error feedback enabled.
_ERROR_FEEDBACK_FAMILIES = ("topk", "topkc")


@dataclass(frozen=True)
class EndToEndResult:
    """Everything produced by one end-to-end run of one scheme."""

    scheme_name: str
    workload_name: str
    history: TrainingHistory
    curve: TTACurve
    rounds_per_second: float
    bits_per_coordinate: float


def needs_error_feedback(scheme_name: str) -> bool:
    """Whether the paper's configuration wraps this scheme in error feedback.

    Accepts spec strings and legacy aliases alike; specs already wrapped in
    ``ef(...)`` never get a second wrapper.
    """
    from repro.compression.registry import ALIASES

    resolved = ALIASES.get(scheme_name, scheme_name)
    try:
        family = parse_spec(resolved).family
    except SpecSyntaxError:
        return resolved.startswith(_ERROR_FEEDBACK_FAMILIES)
    if family == "ef":
        return False
    return family in _ERROR_FEEDBACK_FAMILIES


def build_scheme_pair(
    scheme_name: str, workload: WorkloadSpec, *, error_feedback: bool | None = None
) -> tuple[AggregationScheme, AggregationScheme]:
    """Construct the (functional, pricing) scheme instances for a workload.

    The functional instance aggregates the small simulation model's gradients;
    the pricing instance is configured with the paper-scale layer shapes so
    per-round costs are evaluated at the real model size.  For most schemes
    the two are configured identically; PowerSGD needs the layer-shape split.
    """
    if error_feedback is None:
        error_feedback = needs_error_feedback(scheme_name)

    functional = make_scheme(scheme_name, error_feedback=error_feedback)
    pricing = configure_scheme_for_shapes(
        make_scheme(scheme_name, error_feedback=error_feedback),
        list(workload.paper_layer_shapes),
    )
    return functional, pricing


def build_trainer(
    scheme_name: str,
    workload: WorkloadSpec,
    *,
    cluster: ClusterSpec | None = None,
    seed: int = 0,
    eval_every: int = 10,
    error_feedback: bool | None = None,
    total_rounds_hint: int | None = None,
    num_buckets: int = 1,
    kernel_backend: KernelBackend | str = KernelBackend.BATCHED,
    scenario: Scenario | str | None = None,
    policy: RecoveryPolicy | str | None = None,
    controller: AdaptiveController | None = None,
) -> DDPTrainer:
    """Assemble dataset, model, optimizer, and trainer for one scheme.

    When a ``controller`` is given, ``scheme_name`` must be one of its
    candidate specs; the candidate scheme pairs are built here so the
    trainer can switch between them mid-run.
    """
    cluster = cluster or paper_testbed()
    dataset = SyntheticTeacherDataset(
        input_dim=workload.sim_input_dim,
        num_classes=workload.sim_num_classes,
        seed=seed,
    )
    model = MLPClassifier(
        input_dim=workload.sim_input_dim,
        hidden_dims=workload.sim_hidden_dims,
        num_classes=workload.sim_num_classes,
        seed=seed + 1,
    )
    functional, pricing = build_scheme_pair(
        scheme_name, workload, error_feedback=error_feedback
    )
    schedule = LearningRateSchedule(
        base_lr=workload.sim_base_lr, warmup_rounds=20, total_rounds=total_rounds_hint
    )
    optimizer = SGD(schedule, momentum=0.9)
    candidate_schemes = None
    if controller is not None:
        candidate_schemes = {
            spec: build_scheme_pair(spec, workload) for spec in controller.candidates
        }
    return DDPTrainer(
        model=model,
        dataset=dataset,
        scheme=functional,
        workload=workload,
        cluster=cluster,
        optimizer=optimizer,
        pricing_scheme=pricing,
        eval_every=eval_every,
        seed=seed,
        num_buckets=num_buckets,
        kernel_backend=kernel_backend,
        scenario=scenario,
        policy=policy,
        controller=controller,
        candidate_schemes=candidate_schemes,
        active_spec=scheme_name if controller is not None else None,
    )


def run_end_to_end(
    scheme_name: str,
    workload: WorkloadSpec,
    *,
    num_rounds: int = 600,
    cluster: ClusterSpec | None = None,
    seed: int = 0,
    eval_every: int = 10,
    error_feedback: bool | None = None,
    early_stopping: EarlyStopping | None = None,
    rolling_window: int = 5,
    num_buckets: int = 1,
    kernel_backend: KernelBackend | str = KernelBackend.BATCHED,
    scenario: Scenario | str | None = None,
    policy: RecoveryPolicy | str | None = None,
    controller: AdaptiveController | None = None,
) -> EndToEndResult:
    """Train one scheme on one workload and return its TTA curve.

    Args:
        scheme_name: A registry name (see
            :func:`repro.compression.available_schemes`).
        workload: The workload preset to train.
        num_rounds: Maximum number of training rounds.
        cluster: Simulated cluster; defaults to the paper testbed.
        seed: Seed shared by the dataset, model init, and batch sampling so
            all schemes see identical data and initialisation.
        eval_every: Rounds between held-out evaluations.
        error_feedback: Force error feedback on/off; None uses the paper's
            configuration for that scheme family.
        early_stopping: Optional convergence criterion; defaults to the
            paper's early-stopping practice.
        rolling_window: Rolling-average window (in evaluation points) applied
            to the TTA curve, mirroring the paper's smoothing.
        num_buckets: Gradient buckets per simulated round; more than one
            prices the round through the bucketed pipeline simulator.
        kernel_backend: Compression hot-path implementation (``"batched"``
            or ``"legacy"``); functional results differ only within the
            schemes' quantization tolerance.
        scenario: Optional dynamic-events scenario
            (:class:`~repro.simulator.scenario.Scenario` or spec string):
            rounds are priced on the scenario's per-round effective cluster
            and membership events change the contributing workers.
        policy: Optional fault-recovery policy
            (:class:`~repro.simulator.recovery.RecoveryPolicy` or spec
            string): round deadlines, retries, straggler drops, and
            stale/skip degradation applied to the scenario's rounds.
            Requires ``scenario``; an empty policy is bit-exact with the
            plain scenario path.
        controller: Optional
            :class:`~repro.training.adaptive.AdaptiveController` switching
            the active scheme online; ``scheme_name`` must then be one of
            its candidate specs.
    """
    trainer = build_trainer(
        scheme_name,
        workload,
        cluster=cluster,
        seed=seed,
        eval_every=eval_every,
        error_feedback=error_feedback,
        total_rounds_hint=num_rounds,
        num_buckets=num_buckets,
        kernel_backend=kernel_backend,
        scenario=scenario,
        policy=policy,
        controller=controller,
    )
    if early_stopping is None:
        early_stopping = EarlyStopping(
            patience=15, min_delta=1e-4, mode=workload.metric_improves
        )
    history = trainer.run(num_rounds, stopping=early_stopping)
    curve = TTACurve.from_history(history, window=rolling_window)
    return EndToEndResult(
        scheme_name=scheme_name,
        workload_name=workload.name,
        history=history,
        curve=curve,
        # Scenario-aware: under dynamic events this is the run-level
        # throughput over the recorded round times; static runs keep the
        # exact nominal 1 / round_seconds.
        rounds_per_second=history.effective_rounds_per_second(),
        bits_per_coordinate=trainer.round_cost_estimate.bits_per_coordinate,
    )


def compare_schemes(
    scheme_names: list[str],
    workload: WorkloadSpec,
    *,
    baseline_name: str = "baseline_fp16",
    num_rounds: int = 600,
    cluster: ClusterSpec | None = None,
    seed: int = 0,
    eval_every: int = 10,
    rolling_window: int = 5,
) -> tuple[dict[str, EndToEndResult], dict[str, UtilityReport]]:
    """Run several schemes plus the baseline and compute each one's utility.

    Returns:
        A dict of results keyed by scheme name (the baseline included) and a
        dict of utility reports keyed by scheme name (baseline excluded).
    """
    # Delegated to the session facade; imported lazily because repro.api sits
    # above this module in the layering.
    from repro.api import ExperimentSession

    session = ExperimentSession(cluster=cluster, seed=seed)
    return session.compare(
        list(scheme_names),
        workload,
        baseline=baseline_name,
        num_rounds=num_rounds,
        eval_every=eval_every,
        rolling_window=rolling_window,
    )
