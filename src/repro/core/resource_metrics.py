"""Cost-to-accuracy and power-to-accuracy: the paper's suggested future metrics.

The paper's conclusion notes that time to accuracy "is itself not the only
appropriate metric": the overall power drawn or the dollar cost of building
the model may matter more in some settings, and leaves a framework that takes
them into account as future work.  This module provides that extension: a
resource model for a cluster (power draw and hourly price per node) and
conversions from a TTA curve to cost-to-accuracy (CTA) and power-to-accuracy
(PTA, energy) curves.

Because both conversions multiply time by a per-second rate, a scheme's CTA
and PTA orderings can differ from its TTA ordering only when schemes run on
differently priced/powered clusters -- which is exactly the scenario the
functions support (e.g. comparing a compression scheme on cheap
low-bandwidth nodes against an uncompressed baseline on expensive
high-bandwidth ones).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tta import TTACurve
from repro.simulator.cluster import ClusterSpec


@dataclass(frozen=True)
class ResourceModel:
    """Per-node resource rates of a cluster.

    Attributes:
        node_power_watts: Average power draw of one node (GPUs + host + NIC)
            while training.
        node_cost_per_hour: Price of one node-hour (cloud list price or
            amortised capex), in arbitrary currency units.
    """

    node_power_watts: float = 1300.0
    node_cost_per_hour: float = 8.0

    def __post_init__(self) -> None:
        if self.node_power_watts <= 0:
            raise ValueError("node_power_watts must be positive")
        if self.node_cost_per_hour <= 0:
            raise ValueError("node_cost_per_hour must be positive")

    def cluster_power_watts(self, cluster: ClusterSpec) -> float:
        """Total power draw of the cluster."""
        return self.node_power_watts * cluster.num_nodes

    def cluster_cost_per_second(self, cluster: ClusterSpec) -> float:
        """Total price of running the cluster for one second."""
        return self.node_cost_per_hour * cluster.num_nodes / 3600.0


def cost_to_accuracy(
    curve: TTACurve, cluster: ClusterSpec, resources: ResourceModel | None = None
) -> TTACurve:
    """Convert a time-to-accuracy curve into a cost-to-accuracy curve.

    The returned curve's "times" axis is cumulative training cost (currency
    units); all :class:`TTACurve` queries (cost to target, crossings, utility
    via :func:`repro.core.utility.compute_utility`) apply unchanged.
    """
    resources = resources or ResourceModel()
    rate = resources.cluster_cost_per_second(cluster)
    return TTACurve(
        label=f"{curve.label} (cost)",
        times=curve.times * rate,
        values=curve.values,
        improves=curve.improves,
    )


def power_to_accuracy(
    curve: TTACurve, cluster: ClusterSpec, resources: ResourceModel | None = None
) -> TTACurve:
    """Convert a time-to-accuracy curve into an energy-to-accuracy curve.

    The returned curve's "times" axis is cumulative energy in joules.
    """
    resources = resources or ResourceModel()
    watts = resources.cluster_power_watts(cluster)
    return TTACurve(
        label=f"{curve.label} (energy)",
        times=curve.times * watts,
        values=curve.values,
        improves=curve.improves,
    )


def energy_to_target_joules(
    curve: TTACurve,
    target: float,
    cluster: ClusterSpec,
    resources: ResourceModel | None = None,
) -> float | None:
    """Energy needed to reach ``target``, or None if the run never reaches it."""
    seconds = curve.time_to_target(target)
    if seconds is None:
        return None
    resources = resources or ResourceModel()
    return seconds * resources.cluster_power_watts(cluster)


def cost_to_target(
    curve: TTACurve,
    target: float,
    cluster: ClusterSpec,
    resources: ResourceModel | None = None,
) -> float | None:
    """Training cost needed to reach ``target``, or None if never reached."""
    seconds = curve.time_to_target(target)
    if seconds is None:
        return None
    resources = resources or ResourceModel()
    return seconds * resources.cluster_cost_per_second(cluster)
