"""Legacy setup shim.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so the package can be installed in editable mode on environments whose
setuptools predates PEP 660 editable wheels (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
